(* LSA — loose synchronisation algorithm (Basile et al. [2]).

   Leader/follower scheme, the only algorithm needing frequent inter-replica
   communication.  The leader schedules without restrictions (greedy, fully
   concurrent) and broadcasts every lock-acquisition decision; followers
   enforce the leader's per-mutex grant order.  The client only waits for the
   leader's reply, which is why LSA scales best in Figure 1 — at the price of
   broadcast load (bad on WANs) and a take-over delay when the leader fails.

   Condition variables (added in the FTflex variant): a monitor
   re-acquisition after notify is just another acquisition decision, so the
   same grant messages cover it. *)

open Detmt_runtime
module Recorder = Detmt_obs.Recorder
module Audit = Detmt_obs.Audit

type pending = Plock of int (* tid *) | Preacquire of int

type t = {
  actions : Sched_iface.actions;
  (* --- leader state --- *)
  waitq : Waitq.t; (* admitted, waiting for the mutex, FIFO *)
  kinds : (int, pending) Hashtbl.t; (* tid -> kind of pending operation *)
  mutable grant_seq : int;
  (* --- follower state --- *)
  enforced : Waitq.t; (* per mutex: leader-ordered tids *)
  requested : (int, int) Hashtbl.t; (* tid -> mutex it locally requested *)
  mutable draining : bool;
      (* a promoted leader first drains already-received decisions *)
}

let is_leader t = t.actions.is_leader ()

let audit t ~tid ~action ?mutex ~rule ?candidates () =
  Recorder.decision t.actions.obs ~at:(t.actions.now ())
    ~replica:t.actions.replica_id ~scheduler:"lsa" ~tid ~action ?mutex ~rule
    ?candidates ()

let observing t = Recorder.enabled t.actions.obs

(* The action a grant of [tid] will perform, for the audit log. *)
let pending_action t tid =
  match Hashtbl.find_opt t.kinds tid with
  | Some (Preacquire _) -> Audit.Grant_reacquire
  | Some (Plock _) | None -> Audit.Grant_lock

let perform t tid =
  match Hashtbl.find_opt t.kinds tid with
  | Some (Plock _) ->
    Hashtbl.remove t.kinds tid;
    t.actions.grant_lock tid
  | Some (Preacquire _) ->
    Hashtbl.remove t.kinds tid;
    t.actions.grant_reacquire tid
  | None -> invalid_arg (Printf.sprintf "Lsa: no pending op for t%d" tid)

(* Leader: grant greedily, broadcasting each decision. *)
let leader_grant t tid ~mutex =
  t.grant_seq <- t.grant_seq + 1;
  if observing t then begin
    Recorder.incr t.actions.obs "sched.lsa.grant_broadcasts";
    audit t ~tid ~action:(pending_action t tid) ~mutex ~rule:Audit.Leader_greedy
      ~candidates:(Waitq.waiting t.waitq ~mutex)
      ()
  end;
  t.actions.broadcast_control
    (Sched_iface.Lsa_grant { grant_seq = t.grant_seq; mutex; tid });
  perform t tid

let leader_request t tid ~mutex pending =
  Hashtbl.replace t.kinds tid pending;
  if t.actions.mutex_free_for ~tid ~mutex && Waitq.is_empty t.waitq ~mutex
  then leader_grant t tid ~mutex
  else begin
    if observing t then begin
      Recorder.incr t.actions.obs "sched.lsa.deferrals";
      audit t ~tid ~action:Audit.Defer ~mutex
        ~rule:
          (if t.actions.mutex_free_for ~tid ~mutex then Audit.Queue_wait
           else Audit.Mutex_held)
        ~candidates:(Waitq.waiting t.waitq ~mutex)
        ()
    end;
    Waitq.push t.waitq ~mutex tid
  end

let leader_on_unlock t ~mutex =
  match Waitq.head t.waitq ~mutex with
  | Some tid when t.actions.mutex_free_for ~tid ~mutex ->
    ignore (Waitq.pop t.waitq ~mutex);
    leader_grant t tid ~mutex
  | Some _ | None -> ()

(* Follower: grant only when the local request matches the head of the
   leader's enforced order and the mutex is free. *)
let follower_try t ~mutex =
  match Waitq.head t.enforced ~mutex with
  | Some tid
    when Hashtbl.find_opt t.requested tid = Some mutex
         && t.actions.mutex_free_for ~tid ~mutex ->
    ignore (Waitq.pop t.enforced ~mutex);
    Hashtbl.remove t.requested tid;
    if observing t then begin
      Recorder.incr t.actions.obs "sched.lsa.follower_grants";
      audit t ~tid ~action:(pending_action t tid) ~mutex
        ~rule:Audit.Follower_enforced
        ~candidates:(Waitq.waiting t.enforced ~mutex)
        ()
    end;
    perform t tid
  | Some _ | None -> ()

let follower_request t tid ~mutex pending =
  Hashtbl.replace t.kinds tid pending;
  Hashtbl.replace t.requested tid mutex;
  (if observing t && Waitq.head t.enforced ~mutex <> Some tid then begin
     Recorder.incr t.actions.obs "sched.lsa.deferrals";
     audit t ~tid ~action:Audit.Defer ~mutex ~rule:Audit.Enforced_order_wait
       ~candidates:(Waitq.waiting t.enforced ~mutex)
       ()
   end);
  follower_try t ~mutex

(* A follower promoted to leader finishes the dead leader's published
   decisions first (all survivors received the same prefix, in total order),
   then switches to greedy mode. *)
let drain_done t =
  Hashtbl.fold (fun tid mutex acc -> (tid, mutex) :: acc) t.requested []
  |> List.sort compare
  |> List.iter (fun (tid, mutex) ->
         Hashtbl.remove t.requested tid;
         match Hashtbl.find_opt t.kinds tid with
         | Some (Plock _) -> leader_request t tid ~mutex (Plock tid)
         | Some (Preacquire _) -> leader_request t tid ~mutex (Preacquire tid)
         | None -> ())

let check_promotion t =
  if is_leader t && t.draining then begin
    let any_enforced = Hashtbl.length t.requested > 0 in
    ignore any_enforced;
    (* Drained when no enforced decisions remain unconsumed. *)
    let remaining =
      Hashtbl.fold
        (fun tid mutex acc ->
          if Waitq.mem t.enforced ~mutex ~tid then acc + 1 else acc)
        t.requested 0
    in
    if remaining = 0 then begin
      t.draining <- false;
      drain_done t
    end
  end

let on_request t tid =
  ignore tid;
  t.actions.start_thread tid

let on_lock t tid ~syncid:_ ~mutex =
  if is_leader t && not t.draining then leader_request t tid ~mutex (Plock tid)
  else begin
    follower_request t tid ~mutex (Plock tid);
    check_promotion t
  end

let on_wakeup t tid ~mutex =
  if is_leader t && not t.draining then
    leader_request t tid ~mutex (Preacquire tid)
  else begin
    follower_request t tid ~mutex (Preacquire tid);
    check_promotion t
  end

let on_unlock t _tid ~syncid:_ ~mutex ~freed =
  if freed then
    if is_leader t && not t.draining then leader_on_unlock t ~mutex
    else follower_try t ~mutex

let on_wait t tid ~mutex =
  ignore tid;
  if is_leader t && not t.draining then leader_on_unlock t ~mutex
  else follower_try t ~mutex

let on_nested_reply t tid = t.actions.resume_nested tid

let on_control t ~sender:_ control =
  match control with
  | Sched_iface.Lsa_grant { grant_seq = _; mutex; tid } ->
    if not (is_leader t) || t.draining then begin
      (* Our own broadcasts also self-deliver on the leader; ignore them
         there — decisions were applied synchronously. *)
      Waitq.push t.enforced ~mutex tid;
      follower_try t ~mutex;
      check_promotion t
    end
  | Sched_iface.View_change ->
    (* View change: a freshly promoted leader drains the dead leader's
       published decisions and then schedules greedily. *)
    check_promotion t

let make (actions : Sched_iface.actions) : Sched_iface.sched =
  let t =
    { actions; waitq = Waitq.create (); kinds = Hashtbl.create 64;
      grant_seq = 0; enforced = Waitq.create (); requested = Hashtbl.create 64;
      draining = not (actions.is_leader ()) }
  in
  let base =
    Sched_iface.no_op_sched ~name:"lsa"
      ~on_request:(on_request t)
      ~on_lock:(on_lock t)
      ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(on_nested_reply t)
  in
  { base with
    on_unlock = (fun tid ~syncid ~mutex ~freed ->
        on_unlock t tid ~syncid ~mutex ~freed);
    on_wait = (fun tid ~mutex -> on_wait t tid ~mutex);
    on_control = (fun ~sender c -> on_control t ~sender c);
    (* The grant counter orders every future leader grant; a recovered
       follower must resume it at the donor's value or it would enforce
       stale grant sequence numbers after a later promotion. *)
    snapshot = (fun () -> [ ("grant_seq", t.grant_seq) ]);
    restore =
      (fun kv ->
        List.iter
          (fun (k, v) -> if k = "grant_seq" then t.grant_seq <- v)
          kv) }
