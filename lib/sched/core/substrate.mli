(** The shared scheduler substrate — the policy-independent half of the
    paper's two-module architecture.  Owns thread lifecycle (arrival-ordered
    candidate index, O(log n) per update), per-mutex FIFO wait queues, the
    prediction plumbing around {!Bookkeeping}, and the flight-recorder
    helpers.  Decision modules ({!Decision.S}) keep only policy state. *)

open Detmt_runtime

type pending = Lock of int | Reacquire of int | Resume

type thread = {
  tid : int;
  seq : int;  (** admission order; re-admission gets a fresh one *)
  mutable is_primary : bool;
  mutable ex_primary : bool;
  mutable suspended : bool;
  mutable pending : pending option;
}

type t

val create :
  ?bookkeeping:Bookkeeping.t ->
  ?summary:Detmt_analysis.Predict.class_summary ->
  ?workers:int ->
  name:string ->
  config:Config.t ->
  Sched_iface.actions ->
  t

val actions : t -> Sched_iface.actions

val name : t -> string

val config : t -> Config.t

val bookkeeping : t -> Bookkeeping.t option

val summary : t -> Detmt_analysis.Predict.class_summary option
(** The raw §4.3 prediction tables, when the construction path supplied
    them — delivery-time conflict-class resolution reads sync parameters
    straight from the method summaries. *)

val workers : t -> int
(** The simulated worker-pool width ([1] for serial decision modules). *)

val waitq : t -> Waitq.t

(** {1 Thread lifecycle} *)

val admit : t -> tid:int -> thread
(** Fresh request: register with bookkeeping and enter the admission order. *)

val enqueue : t -> tid:int -> thread
(** (Re-)enter the admission order at the tail with a fresh sequence number,
    without touching bookkeeping (pMAT wakeup re-admission). *)

val remove : t -> tid:int -> unit
(** Leave the order, keep the bookkeeping table (waiting threads). *)

val retire : t -> tid:int -> unit
(** Termination: leave the order and release the bookkeeping table. *)

val find_thread : t -> int -> thread option

val thread : t -> int -> thread
(** @raise Invalid_argument when the thread is not live. *)

val live_count : t -> int

val first : t -> f:(thread -> bool) -> thread option
(** Oldest (least admission seq) live thread satisfying [f]; O(log n) when
    [f] accepts early. *)

val iter : t -> f:(thread -> unit) -> unit
(** Ascending admission order. *)

val fold : t -> init:'a -> f:('a -> thread -> 'a) -> 'a

val threads : t -> thread list
(** Ascending admission order. *)

(** {1 Prediction queries} — pessimistic without a bookkeeping module *)

val predicted : t -> tid:int -> bool

val future_may_lock : t -> tid:int -> mutex:int -> bool

val no_future_locks : t -> tid:int -> bool

val future_mutexes : t -> tid:int -> int list option

val uses_condvars : t -> tid:int -> bool

(** {1 Bookkeeping event forwarders} — no-ops without a bookkeeping module *)

val bk_lockinfo : t -> tid:int -> syncid:int -> mutex:int -> unit

val bk_ignore : t -> tid:int -> syncid:int -> unit

val bk_acquired : t -> tid:int -> syncid:int -> mutex:int -> unit

val bk_loop_enter : t -> tid:int -> loopid:int -> unit

val bk_loop_exit : t -> tid:int -> loopid:int -> unit

(** {1 Observability} *)

val observing : t -> bool

val metric : t -> string -> string
(** ["sched.<name>.<suffix>"]. *)

val incr : ?by:int -> t -> string -> unit

val observe : t -> string -> float -> unit

val audit :
  t ->
  tid:int ->
  action:Detmt_obs.Audit.action ->
  ?mutex:int ->
  rule:Detmt_obs.Audit.rule ->
  ?candidates:int list ->
  unit ->
  unit

(** {1 Grants} *)

val perform : t -> thread -> unit
(** Execute and clear the thread's pending operation; audit emission stays
    with the calling policy.
    @raise Invalid_argument when nothing is pending. *)
