(* Per-mutex FIFO wait queues.  Each queue is a mutable two-list batched
   queue: [push] is O(1) (the original [!q @ [tid]] append was O(n) per
   blocked thread, quadratic under contention); [head]/[pop] are amortised
   O(1).  Observable order is unchanged: strict FIFO per mutex. *)

type cell = { mutable front : int list; mutable back : int list }

type t = (int, cell) Hashtbl.t

let create () : t = Hashtbl.create 32

let queue t mutex =
  match Hashtbl.find_opt t mutex with
  | Some q -> q
  | None ->
    let q = { front = []; back = [] } in
    Hashtbl.add t mutex q;
    q

let normalize q =
  if q.front = [] then begin
    q.front <- List.rev q.back;
    q.back <- []
  end

let push t ~mutex tid =
  let q = queue t mutex in
  q.back <- tid :: q.back

let head t ~mutex =
  let q = queue t mutex in
  normalize q;
  match q.front with [] -> None | tid :: _ -> Some tid

let pop t ~mutex =
  let q = queue t mutex in
  normalize q;
  match q.front with
  | [] -> None
  | tid :: rest ->
    q.front <- rest;
    Some tid

let mem t ~mutex ~tid =
  let q = queue t mutex in
  List.mem tid q.front || List.mem tid q.back

let remove t ~mutex ~tid =
  if mem t ~mutex ~tid then begin
    let q = queue t mutex in
    q.front <- List.filter (fun w -> w <> tid) q.front;
    q.back <- List.filter (fun w -> w <> tid) q.back;
    true
  end
  else false

let is_empty t ~mutex =
  let q = queue t mutex in
  q.front = [] && q.back = []

let waiting t ~mutex =
  let q = queue t mutex in
  q.front @ List.rev q.back
