(** Deterministic sorted candidate index: an incrementally maintained
    ordered set of candidates keyed by an integer (arrival sequence or tid).
    Replaces the per-decision [Hashtbl.fold … |> List.sort] scans of the
    original decision modules — insert/remove/min are O(log n), iteration is
    ascending by key.  All operations are deterministic functions of the
    insertion history. *)

type 'a t

val create : unit -> 'a t

val clear : 'a t -> unit

val cardinal : 'a t -> int
(** O(1). *)

val is_empty : 'a t -> bool

val mem : 'a t -> int -> bool

val add : 'a t -> key:int -> 'a -> unit
(** Insert or replace. *)

val remove : 'a t -> int -> unit

val find : 'a t -> int -> 'a option

val min : 'a t -> (int * 'a) option
(** Least-key binding, O(log n). *)

val find_first : 'a t -> f:(int -> 'a -> bool) -> (int * 'a) option
(** Least-key binding satisfying [f]; ascending scan, early exit. *)

val iter : 'a t -> f:(int -> 'a -> unit) -> unit
(** Ascending key order. *)

val fold : 'a t -> init:'b -> f:(int -> 'a -> 'b -> 'b) -> 'b
(** Ascending key order. *)

val to_list : 'a t -> (int * 'a) list
(** Ascending key order. *)

val keys : 'a t -> int list

(** The replaced scan-based implementation (hash table + fold + sort per
    query), kept behind the same signature for differential unit tests and
    the bench's indexed-vs-scan dispatch comparison. *)
module Reference : sig
  type 'a t

  val create : unit -> 'a t

  val clear : 'a t -> unit

  val cardinal : 'a t -> int

  val is_empty : 'a t -> bool

  val mem : 'a t -> int -> bool

  val add : 'a t -> key:int -> 'a -> unit

  val remove : 'a t -> int -> unit

  val find : 'a t -> int -> 'a option

  val min : 'a t -> (int * 'a) option

  val find_first : 'a t -> f:(int -> 'a -> bool) -> (int * 'a) option

  val iter : 'a t -> f:(int -> 'a -> unit) -> unit

  val fold : 'a t -> init:'b -> f:(int -> 'a -> 'b -> 'b) -> 'b

  val to_list : 'a t -> (int * 'a) list

  val keys : 'a t -> int list
end
