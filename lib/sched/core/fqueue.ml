(* Functional FIFO queue (Okasaki's two-list batched queue): O(1) push,
   amortised O(1) pop, O(1) length.  Replaces the [xs @ [x]] append idiom of
   the original scheduler queues, whose cost was quadratic in queue depth —
   invisible at paper scale (≤ 32 clients) but dominant at the ≥ 64-client
   scaling point.  The element order is exactly the append order, so decision
   modules swapping a list for an [Fqueue] keep their grant order
   bit-identical. *)

type 'a t = { front : 'a list; back : 'a list; length : int }

let empty = { front = []; back = []; length = 0 }

let length q = q.length

let is_empty q = q.length = 0

let push q x = { q with back = x :: q.back; length = q.length + 1 }

let pop q =
  match q.front with
  | x :: front -> Some (x, { q with front; length = q.length - 1 })
  | [] -> (
    match List.rev q.back with
    | [] -> None
    | x :: front -> Some (x, { front; back = []; length = q.length - 1 }))

let of_list xs = { front = xs; back = []; length = List.length xs }

let to_list q = q.front @ List.rev q.back

(* FIFO-order fold; [f] sees elements oldest first. *)
let fold f acc q = List.fold_left f (List.fold_left f acc q.front) (List.rev q.back)

(* Keep only elements satisfying [p], preserving FIFO order. *)
let filter p q = of_list (List.filter p (to_list q))

(* Split into (satisfying, rest), both in FIFO order — the functional
   equivalent of [List.partition] on the append-order list. *)
let partition p q =
  let yes, no = List.partition p (to_list q) in
  (yes, of_list no)
