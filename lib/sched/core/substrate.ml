(* The shared scheduler substrate — the per-replica half of the paper's
   two-module architecture (section 4.3/5) that is policy-independent.

   It owns what every decision module used to hand-roll:
   - thread lifecycle: arrival-ordered registration (a monotone sequence
     number per admission), an O(log n) sorted candidate index over the
     live threads, O(1) tid lookup;
   - per-mutex FIFO wait queues ({!Waitq});
   - the prediction plumbing: an optional {!Bookkeeping} instance,
     registered per request with the start method and updated from the
     injected calls, with the decision-module queries re-exported;
   - flight-recorder boilerplate: the scheduler-named audit/metric helpers.

   Decision modules ({!Decision.S}) hold only policy state (who is primary,
   which round is open, where the token is) and consult the substrate for
   everything else. *)

open Detmt_runtime
module Recorder = Detmt_obs.Recorder
module Audit = Detmt_obs.Audit

(* The pending operation of a thread stopped at a scheduler gate.  [Resume]
   is a nested reply awaiting policy admission (SAT's queue, MAT's
   ex-primaries). *)
type pending = Lock of int | Reacquire of int | Resume

type thread = {
  tid : int;
  seq : int; (* admission order; re-admission gets a fresh one *)
  mutable is_primary : bool; (* MAT-family role flag *)
  mutable ex_primary : bool; (* suspended while primary; resumes as primary *)
  mutable suspended : bool;
  mutable pending : pending option;
}

type t = {
  actions : Sched_iface.actions;
  name : string; (* the variant name, for metrics and the audit log *)
  config : Config.t;
  bookkeeping : Bookkeeping.t option;
  summary : Detmt_analysis.Predict.class_summary option;
      (* the raw §4.3 tables, for delivery-time conflict-class resolution
         (the conflict-graph family reads sync parameters straight from it) *)
  workers : int; (* pool width; 1 for every serial decision module *)
  mutable next_seq : int;
  by_tid : (int, thread) Hashtbl.t; (* live threads, O(1) lookup *)
  order : thread Candidate_index.t; (* live threads keyed by [seq] *)
  waitq : Waitq.t; (* per-mutex FIFO wait queues *)
}

let create ?bookkeeping ?summary ?(workers = 1) ~name ~config
    (actions : Sched_iface.actions) =
  { actions; name; config; bookkeeping; summary; workers; next_seq = 0;
    by_tid = Hashtbl.create 64; order = Candidate_index.create ();
    waitq = Waitq.create () }

let actions t = t.actions

let name t = t.name

let config t = t.config

let bookkeeping t = t.bookkeeping

let summary t = t.summary

let workers t = t.workers

let waitq t = t.waitq

(* ------------------------------ lifecycle ------------------------------ *)

(* Insert a thread at the tail of the admission order.  Used both for fresh
   requests and for re-admission (a pMAT waiter re-enters at the tail on its
   notification). *)
let enqueue t ~tid =
  let th =
    { tid; seq = t.next_seq; is_primary = false; ex_primary = false;
      suspended = false; pending = None }
  in
  t.next_seq <- t.next_seq + 1;
  Hashtbl.replace t.by_tid tid th;
  Candidate_index.add t.order ~key:th.seq th;
  th

(* Admission of a fresh request: registers the thread's start method with
   the bookkeeping module (when present) and enters it into the order. *)
let admit t ~tid =
  Option.iter
    (fun bk -> Bookkeeping.register bk ~tid ~meth:(t.actions.request_method tid))
    t.bookkeeping;
  enqueue t ~tid

(* Leave the admission order but keep the bookkeeping table (pMAT waiters:
   the thread still exists and its prediction state must survive). *)
let remove t ~tid =
  match Hashtbl.find_opt t.by_tid tid with
  | None -> ()
  | Some th ->
    Hashtbl.remove t.by_tid tid;
    Candidate_index.remove t.order th.seq

(* Termination: leave the order and forget the bookkeeping table. *)
let retire t ~tid =
  remove t ~tid;
  Option.iter (fun bk -> Bookkeeping.release bk ~tid) t.bookkeeping

let find_thread t tid = Hashtbl.find_opt t.by_tid tid

let thread t tid =
  match Hashtbl.find_opt t.by_tid tid with
  | Some th -> th
  | None ->
    invalid_arg (Printf.sprintf "%s: unknown thread t%d" t.name tid)

let live_count t = Candidate_index.cardinal t.order

(* Oldest-first views of the live threads (ascending admission order). *)

let first t ~f = Option.map snd (Candidate_index.find_first t.order ~f:(fun _ th -> f th))

let iter t ~f = Candidate_index.iter t.order ~f:(fun _ th -> f th)

let fold t ~init ~f =
  Candidate_index.fold t.order ~init ~f:(fun _ th acc -> f acc th)

let threads t = List.map snd (Candidate_index.to_list t.order)

(* --------------------------- prediction plumbing ----------------------- *)

(* Queries degrade to the pessimistic answer without a bookkeeping module,
   matching what the pessimistic scheduler variants assumed. *)

let predicted t ~tid =
  match t.bookkeeping with
  | None -> false
  | Some bk -> Bookkeeping.predicted bk ~tid

let future_may_lock t ~tid ~mutex =
  match t.bookkeeping with
  | None -> true
  | Some bk -> Bookkeeping.future_may_lock bk ~tid ~mutex

let no_future_locks t ~tid =
  match t.bookkeeping with
  | None -> false
  | Some bk -> Bookkeeping.no_future_locks bk ~tid

let future_mutexes t ~tid =
  match t.bookkeeping with
  | None -> None
  | Some bk -> Bookkeeping.future_mutexes bk ~tid

let uses_condvars t ~tid =
  match t.bookkeeping with
  | None -> true
  | Some bk -> Bookkeeping.uses_condvars bk ~tid

(* Event forwarders, no-ops without a bookkeeping module — decision modules
   wire these into their scheduler record instead of repeating the
   [Option.iter] dance. *)

let bk_lockinfo t ~tid ~syncid ~mutex =
  Option.iter
    (fun bk -> Bookkeeping.on_lockinfo bk ~tid ~syncid ~mutex)
    t.bookkeeping

let bk_ignore t ~tid ~syncid =
  Option.iter (fun bk -> Bookkeeping.on_ignore bk ~tid ~syncid) t.bookkeeping

let bk_acquired t ~tid ~syncid ~mutex =
  Option.iter
    (fun bk -> Bookkeeping.on_acquired bk ~tid ~syncid ~mutex)
    t.bookkeeping

let bk_loop_enter t ~tid ~loopid =
  Option.iter
    (fun bk -> Bookkeeping.on_loop_enter bk ~tid ~loopid)
    t.bookkeeping

let bk_loop_exit t ~tid ~loopid =
  Option.iter
    (fun bk -> Bookkeeping.on_loop_exit bk ~tid ~loopid)
    t.bookkeeping

(* ----------------------------- observability --------------------------- *)

let observing t = Recorder.enabled t.actions.obs

let metric t suffix = "sched." ^ t.name ^ "." ^ suffix

let incr ?by t suffix = Recorder.incr ?by t.actions.obs (metric t suffix)

let observe t suffix v = Recorder.observe t.actions.obs (metric t suffix) v

let audit t ~tid ~action ?mutex ~rule ?candidates () =
  Recorder.decision t.actions.obs ~at:(t.actions.now ())
    ~replica:t.actions.replica_id ~scheduler:t.name ~tid ~action ?mutex ~rule
    ?candidates ()

(* ------------------------------- grants -------------------------------- *)

(* Execute a thread's pending operation.  The caller has decided the grant;
   audit emission stays with the caller (rules differ per policy). *)
let perform_pending t th =
  match th.pending with
  | Some (Lock _) ->
    th.pending <- None;
    t.actions.grant_lock th.tid
  | Some (Reacquire _) ->
    th.pending <- None;
    t.actions.grant_reacquire th.tid
  | Some Resume ->
    th.pending <- None;
    t.actions.resume_nested th.tid
  | None ->
    invalid_arg (Printf.sprintf "%s: no pending op for t%d" t.name th.tid)

(* Every grant a decision module performs flows through here, so this is
   the one place the profiler's Grant phase is timed.  Grants can cascade
   (a grant unblocks the interpreter, which reports the next operation,
   which may grant again synchronously); the profiler times the outermost
   activation only. *)
let perform t th =
  match Recorder.profiler t.actions.obs with
  | None -> perform_pending t th
  | Some p ->
    Detmt_obs.Profile.phase_begin p Detmt_obs.Profile.Grant;
    perform_pending t th;
    Detmt_obs.Profile.phase_end p Detmt_obs.Profile.Grant
