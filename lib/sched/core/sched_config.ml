type t = {
  scheduler : string;
  runtime : Detmt_runtime.Config.t;
  summary : Detmt_analysis.Predict.class_summary option;
  obs : Detmt_obs.Recorder.t;
  shard : int;
  workers : int;
}

let make ?(runtime = Detmt_runtime.Config.default) ?summary
    ?(obs = Detmt_obs.Recorder.disabled) ?(shard = 0) ?(workers = 1) scheduler
    =
  if shard < 0 then invalid_arg "Sched_config.make: shard < 0";
  if workers < 1 then invalid_arg "Sched_config.make: workers < 1";
  { scheduler; runtime; summary; obs; shard; workers }

let with_scheduler t scheduler = { t with scheduler }

let with_summary t summary = { t with summary }

let with_workers t workers =
  if workers < 1 then invalid_arg "Sched_config.with_workers: workers < 1";
  { t with workers }
