(** The one scheduler-construction record.

    Every scheduler in the registry is instantiated from this single record
    via {!Registry.instantiate}; the previous ad-hoc per-module construction
    signatures ([spec.make ~config ~summary], [Adaptive.make ~config
    ~summary], direct [Decision.instantiate] at call sites) are retained
    only as low-level plumbing underneath it — see DESIGN.md, "Sharding and
    batching / configuration API".

    The record carries everything a decision module may need at birth:

    - [scheduler]: registry name ("mat", "psat", ...) to instantiate;
    - [runtime]: the simulated runtime cost model ({!Detmt_runtime.Config});
    - [summary]: the §4.3 prediction tables, required when the named
      scheduler has [needs_prediction] set;
    - [obs]: the flight recorder the instantiating layer runs under (decision
      modules themselves receive the recorder again through
      {!Detmt_runtime.Sched_iface.actions}; the handle here lets wrappers
      and meta-schedulers record without an [actions] in hand);
    - [shard]: which shard's group this instance serialises ([0] for the
      unsharded single-group configuration) — per-shard metric namespaces
      and diagnostics key off it;
    - [workers]: the simulated worker-pool width for the parallel
      conflict-graph family ([1] everywhere else — serial schedulers reject
      anything larger at {!Registry.instantiate}). *)

type t = {
  scheduler : string;
  runtime : Detmt_runtime.Config.t;
  summary : Detmt_analysis.Predict.class_summary option;
  obs : Detmt_obs.Recorder.t;
  shard : int;
  workers : int;
}

val make :
  ?runtime:Detmt_runtime.Config.t ->
  ?summary:Detmt_analysis.Predict.class_summary ->
  ?obs:Detmt_obs.Recorder.t ->
  ?shard:int ->
  ?workers:int ->
  string ->
  t
(** [make name] builds a config for scheduler [name] with the default
    runtime cost model, no prediction summary, the disabled recorder,
    shard [0] and a single worker.
    @raise Invalid_argument when [shard < 0] or [workers < 1]. *)

val with_scheduler : t -> string -> t
(** Same configuration, different decision policy (the adaptive
    meta-scheduler swaps children this way). *)

val with_summary : t -> Detmt_analysis.Predict.class_summary option -> t

val with_workers : t -> int -> t
(** Same configuration, different pool width.
    @raise Invalid_argument when [workers < 1]. *)
