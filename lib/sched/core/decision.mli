(** Decision modules: the policy half of the two-module architecture.  One
    first-class module per scheduler variant; {!instantiate} prepares the
    {!Substrate} (with a {!Bookkeeping} when the variant needs prediction)
    and applies the policy. *)

open Detmt_runtime

module type S = sig
  val name : string

  val needs_prediction : bool

  val policy : Substrate.t -> Sched_iface.sched
end

val instantiate :
  (module S) ->
  config:Config.t ->
  summary:Detmt_analysis.Predict.class_summary option ->
  Sched_iface.actions ->
  Sched_iface.sched
(** @raise Invalid_argument when the variant needs prediction and no summary
    is given. *)
