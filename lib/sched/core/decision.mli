(** Decision modules: the policy half of the two-module architecture.  One
    first-class module per scheduler variant; {!instantiate} (serial) or
    {!instantiate_parallel} prepares the {!Substrate} (with a {!Bookkeeping}
    when the variant needs prediction) and applies the policy.

    {!Serial} is the historical single-grant signature (alias {!S}); the
    nine paper schedulers compile against it unchanged.  {!Parallel} policies
    additionally receive a {!Pool} — a deterministic allocator over
    [Substrate.workers] simulated workers — and may hold several threads in
    flight at once.  {!Of_serial} lifts a serial module into the parallel
    signature at pool width 1. *)

open Detmt_runtime

module type Serial = sig
  val name : string

  val needs_prediction : bool

  val policy : Substrate.t -> Sched_iface.sched
end

module type S = Serial

(** Deterministic worker allocator for parallel decision modules: a
    dispatch always takes the lowest free worker index, so the assignment is
    a pure function of the grant order.  [capacity] is the nominal width a
    policy consults before dispatching fresh work; [dispatch] itself never
    fails, so a policy may deliberately oversubscribe (the conflict-graph
    family resumes condvar waiters on a transient extra worker to keep
    wakeup ordering independent of pool occupancy). *)
module Pool : sig
  type t

  val create : Substrate.t -> t
  (** Nominal capacity [Substrate.workers]. *)

  val capacity : t -> int

  val busy : t -> int

  val saturated : t -> bool
  (** [busy >= capacity]: no fresh dispatches until occupancy drops. *)

  val worker_of : t -> tid:int -> int option

  val dispatch : t -> tid:int -> int
  (** Claim the lowest free worker for [tid] (allocating a transient extra
      one beyond capacity when all are busy), fire [actions.pool_dispatch],
      return the worker index.
      @raise Invalid_argument when the thread is already placed. *)

  val complete : t -> tid:int -> unit
  (** Release the thread's worker (no-op when it holds none) and fire
      [actions.pool_complete]. *)
end

module type Parallel = sig
  val name : string

  val needs_prediction : bool

  val policy : Substrate.t -> Pool.t -> Sched_iface.sched
end

module Of_serial (_ : Serial) : Parallel
(** Pool width must be 1; the lifted policy raises otherwise. *)

val instantiate :
  (module S) ->
  config:Config.t ->
  summary:Detmt_analysis.Predict.class_summary option ->
  Sched_iface.actions ->
  Sched_iface.sched
(** @raise Invalid_argument when the variant needs prediction and no summary
    is given. *)

val instantiate_parallel :
  (module Parallel) ->
  config:Config.t ->
  summary:Detmt_analysis.Predict.class_summary option ->
  workers:int ->
  Sched_iface.actions ->
  Sched_iface.sched
(** As {!instantiate}, with the substrate prepared for [workers] simulated
    pool workers.
    @raise Invalid_argument when [workers < 1], or when the variant needs
    prediction and no summary is given. *)
