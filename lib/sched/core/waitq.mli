(** Per-mutex FIFO queues of threads admitted by policy but waiting for the
    mutex to become free.  Shared by several decision modules. *)

type t

val create : unit -> t

val push : t -> mutex:int -> int -> unit

val head : t -> mutex:int -> int option

val pop : t -> mutex:int -> int option

val remove : t -> mutex:int -> tid:int -> bool

val mem : t -> mutex:int -> tid:int -> bool

val is_empty : t -> mutex:int -> bool

val waiting : t -> mutex:int -> int list
