(* Deterministic sorted candidate index.

   Every decision module needs some flavour of "the least key satisfying a
   predicate": the oldest runnable secondary (MAT), the lowest-tid waiter
   (freefall), the tid-ordered drain of enforced decisions (LSA promotion).
   The original modules answered it with [Hashtbl.fold … |> List.sort] on
   every decision — O(n log n) per grant, and nondeterministic fold order
   hidden only by the sort.  This index keeps the candidates in a balanced
   map keyed by an integer (arrival sequence or tid), so insert/remove/min
   are O(log n) and iteration is ascending by construction.

   The [Reference] sub-module preserves the replaced scan-based
   implementation behind the same signature: the unit suite checks the two
   agree operation-for-operation, and the bench compares their dispatch
   cost at high thread counts. *)

module M = Map.Make (Int)

type 'a t = { mutable map : 'a M.t; mutable count : int }

let create () = { map = M.empty; count = 0 }

let clear t =
  t.map <- M.empty;
  t.count <- 0

let cardinal t = t.count

let is_empty t = t.count = 0

let mem t key = M.mem key t.map

let add t ~key v =
  if not (M.mem key t.map) then t.count <- t.count + 1;
  t.map <- M.add key v t.map

let remove t key =
  if M.mem key t.map then begin
    t.map <- M.remove key t.map;
    t.count <- t.count - 1
  end

let find t key = M.find_opt key t.map

let min t = M.min_binding_opt t.map

(* Least key whose binding satisfies [f]; ascending scan with early exit. *)
let find_first t ~f =
  let result = ref None in
  (try
     M.iter
       (fun k v ->
         if f k v then begin
           result := Some (k, v);
           raise Exit
         end)
       t.map
   with Exit -> ());
  !result

let iter t ~f = M.iter f t.map

let fold t ~init ~f = M.fold f t.map init

let to_list t = M.bindings t.map

let keys t = List.map fst (M.bindings t.map)

(* The pre-refactor grant path, kept verbatim in spirit: candidates in a
   hash table, every query folds and sorts.  Only tests and the bench use
   it. *)
module Reference = struct
  type 'a t = (int, 'a) Hashtbl.t

  let create () : 'a t = Hashtbl.create 64

  let clear = Hashtbl.reset

  let cardinal = Hashtbl.length

  let is_empty t = Hashtbl.length t = 0

  let mem = Hashtbl.mem

  let add t ~key v = Hashtbl.replace t key v

  let remove = Hashtbl.remove

  let find t key = Hashtbl.find_opt t key

  let sorted t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let min t = match sorted t with [] -> None | kv :: _ -> Some kv

  let find_first t ~f = List.find_opt (fun (k, v) -> f k v) (sorted t)

  let iter t ~f = List.iter (fun (k, v) -> f k v) (sorted t)

  let fold t ~init ~f =
    List.fold_left (fun acc (k, v) -> f k v acc) init (sorted t)

  let to_list = sorted

  let keys t = List.map fst (sorted t)
end
