(** Functional FIFO queue with O(1) push and amortised O(1) pop.  Element
    order is the append order, so it is a drop-in replacement for the
    [xs @ [x]] list idiom in decision modules. *)

type 'a t

val empty : 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> 'a t

val pop : 'a t -> ('a * 'a t) option

val of_list : 'a list -> 'a t

val to_list : 'a t -> 'a list
(** Oldest first — the order [pop] would return them. *)

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

val filter : ('a -> bool) -> 'a t -> 'a t

val partition : ('a -> bool) -> 'a t -> 'a list * 'a t
(** [(matching, rest)]; both sides keep FIFO order. *)
