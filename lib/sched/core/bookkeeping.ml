open Detmt_analysis
module Iset = Set.Make (Int)

type entry_state = Pending | Announced of int | Passed | Ignored

type table = {
  ms : Predict.method_summary;
  sidx : (int, Predict.sid_info) Hashtbl.t; (* sid -> info, shared per method *)
  lidx : (int, Predict.loop_info) Hashtbl.t; (* lid -> info, shared per method *)
  entries : (int, entry_state) Hashtbl.t; (* syncid -> state *)
  mutable active_loops : int list; (* innermost first *)
  mutable exited_loops : int list;
  (* Incrementally maintained views of [entries], so the hot decision-module
     queries ([predicted], [future_may_lock]) are O(1)/O(log n) instead of a
     full fold per call (pMAT's rescan issues O(n²) of them per event). *)
  mutable pending_left : int; (* # entries still [Pending] *)
  announced : (int, int) Hashtbl.t; (* mutex -> # [Announced _] entries *)
  mutable future : Iset.t; (* mutexes with announced count > 0, sorted *)
  mutable predicted_cache : int;
      (* memoised [predicted_tab]: -1 unknown, 0 false, 1 true.  The
         predicate only reads [active_loops], [exited_loops] and
         [pending_left], so the three mutation points below reset it;
         decision modules may probe it many times per grant. *)
}

(* Per-method registration data, resolved once per method name and reused by
   every thread running that method: [None] means pessimistic (no summary,
   unknown method, or fallback). *)
type minfo =
  (Predict.method_summary
  * (int, Predict.sid_info) Hashtbl.t
  * (int, Predict.loop_info) Hashtbl.t)
  option

type thread_info =
  | Pessimistic (* no summary, or fallback method: everything unknown *)
  | Tracked of table

type t = {
  summary : Predict.class_summary option;
  threads : (int, thread_info) Hashtbl.t;
  mcache : (string, minfo) Hashtbl.t;
      (* method name -> resolved summary + sid/loop indexes; [find_method]
         is a list scan, so without the cache every registration pays it *)
}

let create ~summary () =
  { summary; threads = Hashtbl.create 64; mcache = Hashtbl.create 16 }

let resolve t meth : minfo =
  match Hashtbl.find_opt t.mcache meth with
  | Some r -> r
  | None ->
    let r =
      match t.summary with
      | None -> None
      | Some cs -> (
        match Predict.find_method cs meth with
        | None -> None
        | Some ms when ms.fallback -> None
        | Some ms ->
          let sidx = Hashtbl.create 16 and lidx = Hashtbl.create 8 in
          List.iter
            (fun (i : Predict.sid_info) -> Hashtbl.replace sidx i.sid i)
            ms.sids;
          List.iter
            (fun (l : Predict.loop_info) -> Hashtbl.replace lidx l.lid l)
            ms.loops;
          Some (ms, sidx, lidx))
    in
    Hashtbl.replace t.mcache meth r;
    r

let register t ~tid ~meth =
  let info =
    match resolve t meth with
    | None -> Pessimistic
    | Some (ms, sidx, lidx) ->
      let entries = Hashtbl.create 16 in
      List.iter
        (fun (i : Predict.sid_info) -> Hashtbl.replace entries i.sid Pending)
        ms.sids;
      Tracked
        { ms; sidx; lidx; entries; active_loops = []; exited_loops = [];
          pending_left = List.length ms.sids;
          announced = Hashtbl.create 16; future = Iset.empty;
          predicted_cache = -1 }
  in
  Hashtbl.replace t.threads tid info

let release t ~tid = Hashtbl.remove t.threads tid

let tracked t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some (Tracked tab) -> Some tab
  | Some Pessimistic | None -> None

(* The single mutation point: updates the pending counter and the announced
   multiset / sorted future set along with the entry itself. *)
let set_entry tab sid state =
  match Hashtbl.find_opt tab.entries sid with
  | None -> ()
  | Some old ->
    tab.predicted_cache <- -1;
    (match old with
    | Pending -> (
      match state with
      | Pending -> ()
      | Announced _ | Passed | Ignored ->
        tab.pending_left <- tab.pending_left - 1)
    | Announced m ->
      let n = Option.value ~default:0 (Hashtbl.find_opt tab.announced m) in
      if n <= 1 then begin
        Hashtbl.remove tab.announced m;
        tab.future <- Iset.remove m tab.future
      end
      else Hashtbl.replace tab.announced m (n - 1)
    | Passed | Ignored -> ());
    (match state with
    | Announced m ->
      let n = Option.value ~default:0 (Hashtbl.find_opt tab.announced m) in
      Hashtbl.replace tab.announced m (n + 1);
      tab.future <- Iset.add m tab.future
    | Pending | Passed | Ignored -> ());
    Hashtbl.replace tab.entries sid state

let on_lockinfo t ~tid ~syncid ~mutex =
  match tracked t tid with
  | None -> ()
  | Some tab -> (
    (* An already-resolved entry is never un-resolved by a late
       announcement (can only happen with unsound instrumentation). *)
    match Hashtbl.find_opt tab.entries syncid with
    | Some Pending | Some (Announced _) ->
      set_entry tab syncid (Announced mutex)
    | Some Passed | Some Ignored | None -> ())

let on_ignore t ~tid ~syncid =
  match tracked t tid with
  | None -> ()
  | Some tab -> set_entry tab syncid Ignored

let loop_still_active tab (info : Predict.sid_info) =
  List.exists (fun lid -> List.mem lid tab.active_loops) info.in_loops

let on_acquired t ~tid ~syncid ~mutex =
  match tracked t tid with
  | None -> ()
  | Some tab -> (
    match Hashtbl.find_opt tab.sidx syncid with
    | None -> () (* a helper-method sid inside an opaque region *)
    | Some info ->
      if loop_still_active tab info then
        (* May be requested again on the next iteration: the mutex stays in
           the future set until the loop is left. *)
        set_entry tab syncid (Announced mutex)
      else set_entry tab syncid Passed)

let on_loop_enter t ~tid ~loopid =
  match tracked t tid with
  | None -> ()
  | Some tab ->
    tab.predicted_cache <- -1;
    tab.active_loops <- loopid :: tab.active_loops;
    tab.exited_loops <- List.filter (fun l -> l <> loopid) tab.exited_loops

let on_loop_exit t ~tid ~loopid =
  match tracked t tid with
  | None -> ()
  | Some tab ->
    tab.predicted_cache <- -1;
    (match tab.active_loops with
    | l :: rest when l = loopid -> tab.active_loops <- rest
    | _ ->
      tab.active_loops <- List.filter (fun l -> l <> loopid) tab.active_loops);
    tab.exited_loops <- loopid :: tab.exited_loops;
    (* Every sid of the scope that cannot run again (no other enclosing
       scope still active) is resolved. *)
    (match Hashtbl.find_opt tab.lidx loopid with
    | None -> ()
    | Some linfo ->
      List.iter
        (fun sid ->
          match Hashtbl.find_opt tab.sidx sid with
          | Some info when not (loop_still_active tab info) -> (
            match Hashtbl.find_opt tab.entries sid with
            | Some Pending | Some (Announced _) -> set_entry tab sid Ignored
            | Some Passed | Some Ignored | None -> ())
          | Some _ | None -> ())
        linfo.sids)

let changing tab lid =
  match Hashtbl.find_opt tab.lidx lid with
  | Some l -> l.changing
  | None -> true (* unknown scope: be pessimistic *)

let predicted_tab tab =
  if tab.predicted_cache >= 0 then tab.predicted_cache = 1
  else begin
    let v =
      (* 1. no changing scope is currently active *)
      (not (List.exists (changing tab) tab.active_loops))
      (* 2. no changing scope lies ahead (neither active nor already exited) *)
      && List.for_all
           (fun (l : Predict.loop_info) ->
             (not l.changing)
             || List.mem l.lid tab.exited_loops
             || List.mem l.lid tab.active_loops (* excluded by 1 if changing *))
           tab.ms.loops
      (* 3. every entry is resolved — maintained incrementally by [set_entry] *)
      && tab.pending_left = 0
    in
    tab.predicted_cache <- (if v then 1 else 0);
    v
  end

let predicted t ~tid =
  match tracked t tid with None -> false | Some tab -> predicted_tab tab

let future_mutexes t ~tid =
  match tracked t tid with
  | None -> None
  | Some tab ->
    if predicted_tab tab then Some (Iset.elements tab.future) else None

let future_may_lock t ~tid ~mutex =
  match tracked t tid with
  | None -> true
  | Some tab -> if predicted_tab tab then Iset.mem mutex tab.future else true

let no_future_locks t ~tid =
  match tracked t tid with
  | None -> false
  | Some tab -> predicted_tab tab && Iset.is_empty tab.future

let uses_condvars t ~tid =
  match Hashtbl.find_opt t.threads tid with
  | Some (Tracked tab) -> tab.ms.uses_condvars
  | Some Pessimistic | None -> true (* unknown method: assume the worst *)
