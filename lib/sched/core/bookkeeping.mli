(** The bookkeeping module of the two-module scheduler architecture
    (section 4.3).

    "The bookkeeping module contains all static and thread-wise information,
    reflecting the knowledge about the threads' current and future lock
    acquisitions. ... The bookkeeping module also offers an interface to the
    decision module the scheduler implementation may use to find out about
    conflicting locks."

    Per thread, a copy of the static syncid table is kept and updated from the
    injected calls: [lockInfo] marks an entry announced, [ignore] discards it,
    an acquisition outside any active loop marks it passed, and loop markers
    maintain the active/exited scope sets.  A thread is {e predicted} when
    every entry is resolved and no changing scope is active or still ahead —
    then its exact future lock set is known. *)

type t

val create : summary:Detmt_analysis.Predict.class_summary option -> unit -> t
(** Without a summary every query degrades to the pessimistic answer, so
    prediction-aware schedulers behave like their pessimistic bases. *)

val register : t -> tid:int -> meth:string -> unit
(** Attach a fresh copy of the start method's static table to the thread.
    Methods without a (non-fallback) summary get pessimistic defaults. *)

val release : t -> tid:int -> unit
(** Forget a terminated thread. *)

(* Runtime notifications, wired from the scheduler callbacks. *)

val on_lockinfo : t -> tid:int -> syncid:int -> mutex:int -> unit

val on_ignore : t -> tid:int -> syncid:int -> unit

val on_acquired : t -> tid:int -> syncid:int -> mutex:int -> unit

val on_loop_enter : t -> tid:int -> loopid:int -> unit

val on_loop_exit : t -> tid:int -> loopid:int -> unit

(* Queries for the decision module. *)

val predicted : t -> tid:int -> bool
(** All entries of the thread's table are marked (announced, passed or
    ignored) and no changing scope is active or ahead. *)

val future_may_lock : t -> tid:int -> mutex:int -> bool
(** Whether the thread may still request the mutex.  [true] whenever the
    thread is not predicted (unknown future conflicts with everything). *)

val no_future_locks : t -> tid:int -> bool
(** The thread is predicted and its future lock set is empty — it "has
    requested and released all of its locks and will never request one
    again" (the MAT weakness fixed in Figure 2). *)

val future_mutexes : t -> tid:int -> int list option
(** The exact future lock set (ascending, duplicate-free), or [None] when
    not predicted.  Maintained incrementally: O(n) only in the size of the
    set itself, never in the number of table entries. *)

val uses_condvars : t -> tid:int -> bool
(** Whether the thread's start method may execute a condition-variable
    [wait]/[notify] (from the static summary).  [true] when unknown.
    Decision modules that let predicted threads run outside their normal
    serialisation discipline (pPDS independence) must exclude such threads:
    a wait re-enters the grant machinery at a timing-dependent point, and a
    notify wakes third parties at one. *)
