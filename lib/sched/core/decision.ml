(* The decision-module signature of the two-module scheduler architecture.

   "The scheduler is split into a generic bookkeeping module and an
   algorithm-specific decision module" (section 5).  A decision module is a
   policy over a prepared {!Substrate}: it receives the substrate (which
   already carries the replica actions, the configuration and — for
   prediction-aware variants — a bookkeeping instance) and returns the
   scheduler callback record.

   Each variant is one first-class module: [Sat.Decision] and
   [Sat.Predicted] share their implementation but differ in [name] and
   [needs_prediction], which selects whether [instantiate] equips the
   substrate with a bookkeeping module. *)

open Detmt_runtime

module type S = sig
  val name : string

  val needs_prediction : bool
  (** Whether [instantiate] must build a {!Bookkeeping} from the class
      summary (and fail without one). *)

  val policy : Substrate.t -> Sched_iface.sched
end

let instantiate (module D : S) ~config
    ~(summary : Detmt_analysis.Predict.class_summary option) actions =
  let bookkeeping =
    if D.needs_prediction then
      match summary with
      | Some _ -> Some (Bookkeeping.create ~summary ())
      | None ->
        invalid_arg
          (Printf.sprintf
             "%s needs a prediction summary (run Transform.predictive)" D.name)
    else None
  in
  D.policy (Substrate.create ?bookkeeping ~name:D.name ~config actions)
