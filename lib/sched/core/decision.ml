(* The decision-module signatures of the two-module scheduler architecture.

   "The scheduler is split into a generic bookkeeping module and an
   algorithm-specific decision module" (section 5).  A decision module is a
   policy over a prepared {!Substrate}: it receives the substrate (which
   already carries the replica actions, the configuration and — for
   prediction-aware variants — a bookkeeping instance) and returns the
   scheduler callback record.

   Two signatures coexist:

   - {!Serial} (the historical [S]): one grant at a time, worker-pool width
     fixed at 1.  All nine paper schedulers are serial modules.
   - {!Parallel}: the policy additionally receives a {!Pool} — a
     deterministic allocator over [Substrate.workers] simulated workers —
     and may hold several threads in flight at once (multi-grant decisions,
     worker-completion bookkeeping).  The conflict-graph family (cgs/pcgs)
     lives here.

   {!Of_serial} lifts a serial module into the parallel signature (pool
   width 1), so the registry stores one constructor shape. *)

open Detmt_runtime

module type Serial = sig
  val name : string

  val needs_prediction : bool
  (** Whether [instantiate] must build a {!Bookkeeping} from the class
      summary (and fail without one). *)

  val policy : Substrate.t -> Sched_iface.sched
end

module type S = Serial
(** Historical name; the nine serial schedulers compile against it
    unchanged. *)

(* ------------------------------- pool ---------------------------------- *)

(* A deterministic worker allocator.  Workers are identified by index; a
   dispatch always takes the lowest free index, so the assignment (and the
   observability series keyed on it) is a pure function of the grant order
   and never of wall-clock or hashing accidents.

   [capacity] is the nominal width a policy consults ([saturated]) before
   dispatching fresh work, but [dispatch] itself never fails: a policy may
   deliberately oversubscribe — the conflict-graph family resumes
   condition-variable waiters on a transient extra worker so that wakeup
   ordering is a function of the per-mutex event order only, never of pool
   occupancy (which varies with delivery timing across replicas). *)
module Pool = struct
  module Iset = Set.Make (Int)

  type t = {
    sub : Substrate.t;
    capacity : int;
    mutable free_set : Iset.t; (* released worker indices *)
    mutable next_fresh : int; (* next never-used index *)
    by_tid : (int, int) Hashtbl.t; (* running tid -> worker *)
    mutable busy : int;
  }

  let create sub =
    { sub; capacity = Substrate.workers sub; free_set = Iset.empty;
      next_fresh = 0; by_tid = Hashtbl.create 16; busy = 0 }

  let capacity t = t.capacity

  let busy t = t.busy

  let saturated t = t.busy >= t.capacity

  let worker_of t ~tid = Hashtbl.find_opt t.by_tid tid

  let dispatch t ~tid =
    if Hashtbl.mem t.by_tid tid then
      invalid_arg
        (Printf.sprintf "%s: t%d already on a worker"
           (Substrate.name t.sub) tid);
    let w =
      match Iset.min_elt_opt t.free_set with
      | Some w ->
        t.free_set <- Iset.remove w t.free_set;
        w
      | None ->
        let w = t.next_fresh in
        t.next_fresh <- w + 1;
        w
    in
    t.busy <- t.busy + 1;
    Hashtbl.replace t.by_tid tid w;
    (Substrate.actions t.sub).pool_dispatch ~worker:w ~tid;
    w

  let complete t ~tid =
    match Hashtbl.find_opt t.by_tid tid with
    | None -> ()
    | Some w ->
      Hashtbl.remove t.by_tid tid;
      t.free_set <- Iset.add w t.free_set;
      t.busy <- t.busy - 1;
      (Substrate.actions t.sub).pool_complete ~worker:w ~tid
end

module type Parallel = sig
  val name : string

  val needs_prediction : bool

  val policy : Substrate.t -> Pool.t -> Sched_iface.sched
  (** The pool is created over [Substrate.workers] workers; the policy owns
      its occupancy (every dispatched thread must eventually be completed
      back). *)
end

module Of_serial (D : Serial) : Parallel = struct
  let name = D.name

  let needs_prediction = D.needs_prediction

  let policy sub pool =
    if Pool.capacity pool <> 1 then
      invalid_arg
        (Printf.sprintf
           "%s: serial decision module cannot drive %d workers" D.name
           (Pool.capacity pool));
    D.policy sub
end

(* --------------------------- instantiation ----------------------------- *)

let make_bookkeeping ~name ~needs_prediction
    ~(summary : Detmt_analysis.Predict.class_summary option) =
  if needs_prediction then
    match summary with
    | Some _ -> Some (Bookkeeping.create ~summary ())
    | None ->
      invalid_arg
        (Printf.sprintf
           "%s needs a prediction summary (run Transform.predictive)" name)
  else None

let instantiate (module D : S) ~config
    ~(summary : Detmt_analysis.Predict.class_summary option) actions =
  let bookkeeping =
    make_bookkeeping ~name:D.name ~needs_prediction:D.needs_prediction
      ~summary
  in
  D.policy (Substrate.create ?bookkeeping ?summary ~name:D.name ~config actions)

let instantiate_parallel (module D : Parallel) ~config
    ~(summary : Detmt_analysis.Predict.class_summary option) ~workers actions
    =
  if workers < 1 then
    invalid_arg (Printf.sprintf "%s: workers < 1" D.name);
  let bookkeeping =
    make_bookkeeping ~name:D.name ~needs_prediction:D.needs_prediction
      ~summary
  in
  let sub =
    Substrate.create ?bookkeeping ?summary ~workers ~name:D.name ~config
      actions
  in
  D.policy sub (Pool.create sub)
