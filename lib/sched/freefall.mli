(** Freefall — the deliberately non-deterministic baseline (native JVM
    behaviour): first-come first-served grants with random tie-breaks from a
    per-replica generator.  Replicas diverge; the consistency checker must
    catch it (motivation experiment E10). *)

module Base : Decision.S
(** ["freefall"], no prediction, not deterministic. *)
