(* CGS — conflict-graph scheduling (parallel state-machine replication,
   "early scheduling" after Alchieri, Dotti and Pedone).

   The paper's five schedulers serialise lock acquisitions through a token
   (SAT's active thread, MAT's primary, PDS's rounds).  CGS instead decides
   {e at delivery time}: every request is assigned a conflict class — the
   set of mutexes its execution may acquire, resolved from the §4.3
   prediction summary against the request's own arguments — and the live
   requests form a conflict graph keyed by total-order slot.  Requests whose
   classes are disjoint from every older live request are dispatched
   concurrently onto a pool of [Sched_config.workers] simulated workers;
   requests that conflict wait until the conflicting predecessors commit
   (terminate).  Completions therefore retire in per-mutex slot order — the
   deterministic commit barrier — which makes reply tables, object states
   and per-mutex acquisition fingerprints independent of the worker count
   and of delivery timing skew across replicas.

   Class resolution, per start method of the summary:
   - [Sp_this]   -> the object monitor ([actions.self_mutex]);
   - [Sp_arg i]  -> the request's [i]-th argument when it is a mutex value
                    ([actions.request_arg]);
   - anything else (locals, fields, globals, call results, fallback or
     unknown methods) -> [Top], the opaque class that conflicts with
     everything, so unresolvable requests serialise exactly like SEQ.

   Determinism argument (the invariants DESIGN.md spells out):
   1. Two live requests whose classes share a mutex are never in flight
      together, except through the condvar hole below; among waiters the
      scan is slot-ordered FIFO, so the per-mutex acquisition order is the
      slot-order projection — a function of the total order only.
   2. A parked waiter (condvar wait on monitor [m]) releases its worker and
      stops blocking [m] — the hole that lets its future notifier run —
      but keeps blocking the rest of its class.
   3. A woken waiter re-acquires as soon as its monitor is free and no
      other live class member is in flight; it resumes on a transient
      oversubscribed worker, so wakeup order is a function of the
      per-mutex event order only, never of pool occupancy (which varies
      with delivery timing across replicas).
   4. Within one request, lock grants are immediate (its class owns its
      mutexes while it runs), so the intra-request order is program order.

   The {!Predicted} variant (pcgs) additionally shrinks a running request's
   in-flight blockset to [held ∪ future_mutexes] once the bookkeeping
   module proves the prediction exact — early release, Figure 2 style — so
   successors can start before the predecessor terminates.  Threads whose
   method may touch condition variables keep the static class (the pPDS
   exclusion rule: waits and notifies re-enter the grant machinery at
   timing-dependent points).

   Known limitation, documented like SEQ's wait deadlock: a [Top]-class
   request that executes a condvar wait keeps blocking everything while
   parked, so its notifier can never run.  Every condvar workload in the
   tree resolves its monitor ([Sp_this]), which keeps the hole open.

   Workspace speculation (the {!Workspace} and {!Safety_net} variants).
   Instead of waiting for the graph to clear, a speculation-eligible request
   is dispatched immediately against a copy-on-write workspace
   ({!Detmt_runtime.Workspace}): reads page committed values in, writes stay
   in a private overlay, lock acquisitions are virtual.  When the
   speculation finishes it parks in [Spec_ready] (worker released) until its
   slot-order commit barrier — every older live request terminated or
   condvar-parked — where the workspace is validated value-by-value against
   the committed state and either merged ([ws_commit] true) or discarded and
   re-executed directly at the barrier.  Because the barrier admits exactly
   the slot-serial prefix, the commit-or-abort verdict and the re-execution
   are functions of the total order alone: replicas may disagree on abort
   {e counts} (torn reads depend on worker timing) but never on replies,
   states or per-mutex acquisition order.  Scan rules that keep this true:

   - a speculative dispatch needs only a free worker — it ignores the
     conflict graph and the pend prefix (validation subsumes them);
   - no younger request may start {e directly} (and no woken waiter may
     reacquire) while an older speculation is live — a direct execution
     writes committed state with nothing to validate it against, so it must
     stay behind every older uncommitted slot;
   - commits happen only at the head: one [Spec_ready] node commits per
     scan, and only when no older non-parked node is live.  Condvar-parked
     elders do not block the barrier — in SEQ a parked request's
     continuation also runs after younger slots complete.

   Requests whose method may touch condition variables never speculate
   (wait/notify cannot be virtualised; hitting one anyway aborts the
   speculation defensively), and fallback/unknown methods are classified
   condvar-capable by the bookkeeping, so only statically analysed methods
   enter a workspace.  Mirror of the [Top]+wait limitation above: in a
   workload mixing condvar methods with speculation, a parked waiter whose
   notifier is younger than a live speculation delays that notifier until
   the speculation commits — safe, merely slower; no in-tree workload mixes
   the two.

   [wss] ({!Workspace}) speculates {e every} condvar-free request and
   replays the virtual acquisition log into the real acquisition
   fingerprints at commit, so its per-mutex order is the slot-order
   projection — differentially equal to SEQ.  [cgs+ws] ({!Safety_net})
   keeps the conflict graph for resolvable classes and speculates only
   [Top]-class requests (the ones plain CGS would serialise), leaving
   acquisition fingerprints to the direct executions — differentially equal
   to CGS whenever predictions resolve every class. *)

open Detmt_runtime
module Audit = Detmt_obs.Audit
module Predict = Detmt_analysis.Predict
module Iset = Set.Make (Int)

type cls = Top | Mutexes of Iset.t

(* Which requests execute speculatively inside a copy-on-write workspace:
   none (cgs/pcgs), only [Top]-class ones (cgs+ws — the safety net for
   mispredictions), or every condvar-free one (wss). *)
type spec_mode = No_spec | Spec_top | Spec_all

(* Waiting: delivered, not yet dispatched.  Running: on a pool worker
   (nested invocations keep the worker).  Parked: condvar wait on the
   monitor, worker released.  Woken: notified, needs the monitor back.
   Spec: executing against a workspace on a pool worker.  Spec_ready:
   speculation finished, worker released, workspace held for the
   slot-order commit barrier.  Committing: workspace merged, reply build
   in progress until the ordinary terminate. *)
type phase =
  | Waiting
  | Running
  | Parked of int
  | Woken of int
  | Spec
  | Spec_ready
  | Committing

type node = {
  tid : int;
  cls : cls; (* static conflict class, fixed at delivery *)
  mutable spec : bool; (* destined for workspace execution; cleared when an
                          abort forces the retry onto the direct path *)
  mutable phase : phase;
  mutable held : Iset.t; (* mutexes currently held *)
  mutable contrib : cls option; (* blockset registered in the graph *)
}

type t = {
  sub : Substrate.t;
  pool : Decision.Pool.t;
  early : bool; (* pcgs: prediction-shrunk in-flight blocksets *)
  spec : spec_mode;
  record_acq : bool; (* replay virtual acquisitions into the fingerprint at
                        commit (wss differentially matches SEQ) *)
  nodes : (int, node) Hashtbl.t;
  (* The conflict graph's edge information, kept as a multiset: how many
     in-flight nodes block each mutex, plus the count of opaque ([Top])
     and total contributors.  Eligibility tests are O(|class|). *)
  counts : (int, int) Hashtbl.t;
  mutable top_count : int;
  mutable inflight : int;
  mutable woken : int; (* nodes in [Woken] phase, for the scan fast path *)
  mutable ready : int; (* nodes in [Spec_ready] phase, same purpose *)
  mutable scanning : bool; (* re-entrancy guard for the grant cascade *)
  mutable again : bool;
}

(* --------------------------- class resolution -------------------------- *)

let classify t ~tid =
  let a = Substrate.actions t.sub in
  match Substrate.summary t.sub with
  | None -> Top
  | Some summary ->
    (match Predict.find_method summary (a.request_method tid) with
    | None -> Top
    | Some ms when ms.Predict.fallback -> Top
    | Some ms ->
      let resolve acc (si : Predict.sid_info) =
        match acc with
        | None -> None
        | Some s ->
          (match si.Predict.param with
          | Detmt_lang.Ast.Sp_this -> Some (Iset.add (a.self_mutex ()) s)
          | Detmt_lang.Ast.Sp_arg i ->
            (match a.request_arg ~tid i with
            | Some (Detmt_lang.Ast.Vmutex m) -> Some (Iset.add m s)
            | Some _ | None -> None)
          | _ -> None)
      in
      (match List.fold_left resolve (Some Iset.empty) ms.Predict.sids with
      | Some s -> Mutexes s
      | None -> Top))

(* --------------------------- graph bookkeeping ------------------------- *)

let count t m = Option.value ~default:0 (Hashtbl.find_opt t.counts m)

let add_contrib t = function
  | Top ->
    t.top_count <- t.top_count + 1;
    t.inflight <- t.inflight + 1
  | Mutexes s ->
    Iset.iter (fun m -> Hashtbl.replace t.counts m (count t m + 1)) s;
    t.inflight <- t.inflight + 1

let remove_contrib t = function
  | Top ->
    t.top_count <- t.top_count - 1;
    t.inflight <- t.inflight - 1
  | Mutexes s ->
    Iset.iter
      (fun m ->
        match count t m - 1 with
        | 0 -> Hashtbl.remove t.counts m
        | c -> Hashtbl.replace t.counts m c)
      s;
    t.inflight <- t.inflight - 1

(* The blockset an in-flight node imposes on the rest of the graph. *)
let blockset t n =
  match n.phase with
  | Waiting -> None
  | Running ->
    Some
      (match n.cls with
      | Top -> Top
      | Mutexes s ->
        if
          t.early
          && (not (Substrate.uses_condvars t.sub ~tid:n.tid))
          && Substrate.predicted t.sub ~tid:n.tid
        then
          match Substrate.future_mutexes t.sub ~tid:n.tid with
          | Some fut ->
            Mutexes (Iset.union n.held (Iset.of_list fut)) (* early release *)
          | None -> Mutexes (Iset.union s n.held)
        else Mutexes (Iset.union s n.held))
  | Parked m ->
    (* The condvar hole: stop blocking the parked monitor so the future
       notifier can dispatch; keep blocking the rest of the class. *)
    Some
      (match n.cls with
      | Top -> Top
      | Mutexes s -> Mutexes (Iset.union n.held (Iset.remove m s)))
  | Woken _ ->
    Some
      (match n.cls with
      | Top -> Top
      | Mutexes s -> Mutexes (Iset.union n.held s))
  | Spec | Spec_ready | Committing ->
    (* Speculations never touch committed state or real mutexes before
       their commit barrier, so they impose nothing on the graph; the
       scan's [spec_seen] rule is what holds younger direct starts back. *)
    None

(* Recompute and re-register a node's blockset; [true] when it changed. *)
let refresh t n =
  let next = blockset t n in
  if next = n.contrib then false
  else begin
    Option.iter (remove_contrib t) n.contrib;
    Option.iter (add_contrib t) next;
    n.contrib <- next;
    true
  end

let node t tid =
  match Hashtbl.find_opt t.nodes tid with
  | Some n -> n
  | None ->
    invalid_arg
      (Printf.sprintf "%s: unknown node t%d" (Substrate.name t.sub) tid)

(* ------------------------------- the scan ------------------------------ *)

type decision =
  | Start of node
  | Reacquire of node * int
  | Start_spec of node
  | Commit of node

exception Decide of decision

(* One slot-ordered pass over the live nodes.  [pend] accumulates the
   classes of older undispatched waiters (the FIFO-per-class rule: an
   undispatched request blocks every younger class-sharer, which pins the
   per-mutex acquisition order to the slot order).  Woken nodes are checked
   against the in-flight graph minus their own contribution; they skip the
   pend prefix (their class is disjoint from every older pending class by
   the dispatch invariant) and the capacity check (rule 3 above).

   Two more slot-ordered flags carry the workspace rules: [spec_seen] — an
   older uncommitted speculation has been passed, so no younger node may
   start directly or reacquire (its committed-state writes would have
   nothing validating them against the older slot); and [blocking_older] —
   some older non-parked node is still live, so a [Spec_ready] node is not
   yet at its commit barrier.  Parked elders set neither: a parked
   request's continuation runs after younger slots in SEQ too. *)
exception No_decision

(* The short-circuits below never change which decision a full pass would
   return — they only skip passes (or suffixes) that provably return
   [None], which is what keeps the scan off the O(live-requests) path for
   every event fired while the pool is saturated.  Start needs a free
   worker; Reacquire needs a [Woken] node; Commit needs a [Spec_ready]
   node; and once an opaque waiter has been passed over, no younger
   Waiting node can start either (only valid with speculation off:
   speculative dispatches ignore the pend prefix). *)
let find_decision t =
  let can_start = not (Decision.Pool.saturated t.pool) in
  if (not can_start) && t.woken = 0 && t.ready = 0 then None
  else begin
  let woken_unseen = ref t.woken in
  let pend = ref Iset.empty and pend_top = ref false and pend_n = ref 0 in
  let spec_seen = ref false and blocking_older = ref false in
  let glob_conflict = function
    | Top -> t.inflight > 0
    | Mutexes s -> t.top_count > 0 || Iset.exists (fun m -> count t m > 0) s
  in
  let pend_conflict = function
    | Top -> !pend_n > 0
    | Mutexes s -> !pend_top || Iset.exists (fun m -> Iset.mem m !pend) s
  in
  let add_pend = function
    | Top ->
      pend_top := true;
      incr pend_n
    | Mutexes s ->
      pend := Iset.union !pend s;
      incr pend_n
  in
  let visit (th : Substrate.thread) =
    match Hashtbl.find_opt t.nodes th.tid with
    | None -> ()
    | Some n ->
      (match n.phase with
      | Running -> blocking_older := true
      | Parked _ -> ()
      | Committing -> blocking_older := true
      | Spec ->
        blocking_older := true;
        spec_seen := true
      | Spec_ready ->
        if not !blocking_older then raise (Decide (Commit n));
        blocking_older := true;
        spec_seen := true
      | Waiting when n.spec ->
        if can_start then raise (Decide (Start_spec n));
        blocking_older := true;
        spec_seen := true
      | Waiting ->
        if
          can_start
          && (not !spec_seen)
          && (not !pend_top)
          && (not (glob_conflict n.cls))
          && not (pend_conflict n.cls)
        then raise (Decide (Start n))
        else begin
          blocking_older := true;
          add_pend n.cls;
          if !pend_top && !woken_unseen = 0 && t.spec = No_spec then
            raise No_decision
        end
      | Woken m ->
        decr woken_unseen;
        let eligible =
          (not !spec_seen)
          && (Substrate.actions t.sub).mutex_free_for ~tid:n.tid ~mutex:m
          &&
          match n.cls with
          | Top -> t.inflight <= 1 (* only its own contribution *)
          | Mutexes s ->
            let need = Iset.union n.held s in
            let own =
              match n.contrib with Some (Mutexes o) -> o | _ -> Iset.empty
            in
            t.top_count = 0
            && not
                 (Iset.exists
                    (fun m' ->
                      count t m' > (if Iset.mem m' own then 1 else 0))
                    need)
        in
        if eligible then raise (Decide (Reacquire (n, m)));
        blocking_older := true)
  in
  match Substrate.iter t.sub ~f:visit with
  | () -> None
  | exception No_decision -> None
  | exception Decide d -> Some d
  end

let perform t = function
  | Start n ->
    n.phase <- Running;
    ignore (refresh t n);
    let w = Decision.Pool.dispatch t.pool ~tid:n.tid in
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "dispatches";
      Substrate.observe t.sub "pool_busy"
        (float_of_int (Decision.Pool.busy t.pool));
      Substrate.audit t.sub ~tid:n.tid ~action:Audit.Start_thread
        ~rule:Audit.Predicted_no_conflict
        ~candidates:[ w ] ()
    end;
    (Substrate.actions t.sub).start_thread n.tid
  | Start_spec n ->
    n.phase <- Spec;
    let w = Decision.Pool.dispatch t.pool ~tid:n.tid in
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "spec_dispatches";
      Substrate.observe t.sub "pool_busy"
        (float_of_int (Decision.Pool.busy t.pool));
      Substrate.audit t.sub ~tid:n.tid ~action:Audit.Start_thread
        ~rule:Audit.Speculative ~candidates:[ w ] ()
    end;
    let a = Substrate.actions t.sub in
    a.ws_begin ~tid:n.tid ~record_acquisitions:t.record_acq;
    a.start_thread n.tid
  | Commit n ->
    n.phase <- Committing;
    t.ready <- t.ready - 1;
    if (Substrate.actions t.sub).ws_commit ~tid:n.tid then begin
      if Substrate.observing t.sub then begin
        Substrate.incr t.sub "ws_commits";
        Substrate.audit t.sub ~tid:n.tid ~action:Audit.Commit_ws
          ~rule:Audit.Slot_barrier ()
      end
    end
    else begin
      (* Stale reads: the workspace was discarded and the thread reset.
         Retry directly — the node sits at its own barrier (nothing older
         is live except parked elders), so the very next scan starts it
         against the committed state it just validated against. *)
      n.spec <- false;
      n.phase <- Waiting;
      if Substrate.observing t.sub then begin
        Substrate.incr t.sub "ws_aborts";
        Substrate.audit t.sub ~tid:n.tid ~action:Audit.Abort_ws
          ~rule:Audit.Stale_read ()
      end
    end
  | Reacquire (n, m) ->
    n.phase <- Running;
    t.woken <- t.woken - 1;
    ignore (refresh t n);
    ignore (Decision.Pool.dispatch t.pool ~tid:n.tid);
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "grants";
      if Decision.Pool.saturated t.pool then
        Substrate.incr t.sub "oversubscribed";
      Substrate.audit t.sub ~tid:n.tid ~action:Audit.Grant_reacquire
        ~mutex:m ~rule:Audit.Fifo_head ()
    end;
    Substrate.perform t.sub (Substrate.thread t.sub n.tid)

(* Grants cascade synchronously (a dispatch runs interpreter steps that may
   terminate the thread and re-enter the scheduler), so the scan must not
   iterate across its own mutations: find one decision, perform it, rescan
   from the top.  The [scanning] guard turns re-entrant rescans into a
   pending [again] bit drained by the outer activation. *)
let rec drain t =
  match find_decision t with
  | None -> ()
  | Some d ->
    perform t d;
    drain t

and rescan t =
  if t.scanning then t.again <- true
  else begin
    t.scanning <- true;
    let rec loop () =
      t.again <- false;
      drain t;
      if t.again then loop ()
    in
    loop ();
    t.scanning <- false
  end

(* ------------------------------ callbacks ------------------------------ *)

let on_request t tid =
  ignore (Substrate.admit t.sub ~tid);
  let cls = classify t ~tid in
  (* Speculation eligibility is fixed at delivery: condvar-capable methods
     (including every fallback/unknown one — the bookkeeping reports those
     pessimistically) take the direct path, so wait/notify only ever reach
     a workspace through a prediction bug, where the replica aborts them. *)
  let spec =
    (match t.spec with
    | No_spec -> false
    | Spec_top -> cls = Top
    | Spec_all -> true)
    && not (Substrate.uses_condvars t.sub ~tid)
  in
  let n = { tid; cls; spec; phase = Waiting; held = Iset.empty;
            contrib = None }
  in
  Hashtbl.replace t.nodes tid n;
  rescan t;
  if n.phase = Waiting && Substrate.observing t.sub then begin
    Substrate.incr t.sub "deferrals";
    Substrate.audit t.sub ~tid ~action:Audit.Defer ~rule:Audit.Queue_wait ()
  end

(* Within one request the class owns its mutexes, so a lock is granted the
   moment it is requested.  The queue below is defensive only: it preserves
   per-mutex FIFO order if an unforeseen overlap ever materialises, rather
   than crashing the replica with a grant on a held mutex. *)
let on_lock t tid ~syncid:_ ~mutex =
  let th = Substrate.thread t.sub tid in
  th.pending <- Some (Substrate.Lock mutex);
  if (Substrate.actions t.sub).mutex_free_for ~tid ~mutex then begin
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "grants";
      Substrate.audit t.sub ~tid ~action:Audit.Grant_lock ~mutex
        ~rule:Audit.Mutex_free ()
    end;
    Substrate.perform t.sub th
  end
  else begin
    Waitq.push (Substrate.waitq t.sub) ~mutex tid;
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "deferrals";
      Substrate.audit t.sub ~tid ~action:Audit.Defer ~mutex
        ~rule:Audit.Mutex_held
        ~candidates:
          (Option.to_list ((Substrate.actions t.sub).mutex_owner mutex))
        ()
    end
  end

let service_waitq t ~mutex =
  let a = Substrate.actions t.sub in
  match Waitq.head (Substrate.waitq t.sub) ~mutex with
  | Some tid when a.mutex_free_for ~tid ~mutex ->
    ignore (Waitq.pop (Substrate.waitq t.sub) ~mutex);
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "grants";
      Substrate.audit t.sub ~tid ~action:Audit.Grant_lock ~mutex
        ~rule:Audit.Fifo_head ()
    end;
    Substrate.perform t.sub (Substrate.thread t.sub tid)
  | _ -> ()

let on_acquired t tid ~syncid ~mutex =
  Substrate.bk_acquired t.sub ~tid ~syncid ~mutex;
  let n = node t tid in
  n.held <- Iset.add mutex n.held;
  if refresh t n then rescan t

let on_unlock t tid ~syncid:_ ~mutex ~freed =
  if freed then begin
    let n = node t tid in
    n.held <- Iset.remove mutex n.held;
    ignore (refresh t n);
    rescan t;
    service_waitq t ~mutex
  end

let on_wait t tid ~mutex =
  (* The wait released the monitor; the worker goes back to the pool. *)
  let n = node t tid in
  n.held <- Iset.remove mutex n.held;
  n.phase <- Parked mutex;
  ignore (refresh t n);
  Decision.Pool.complete t.pool ~tid;
  if Substrate.observing t.sub then Substrate.incr t.sub "parks";
  rescan t;
  service_waitq t ~mutex

let on_wakeup t tid ~mutex =
  let n = node t tid in
  n.phase <- Woken mutex;
  t.woken <- t.woken + 1;
  ignore (refresh t n);
  (Substrate.thread t.sub tid).pending <- Some (Substrate.Reacquire mutex);
  rescan t

let on_reacquired t tid ~mutex =
  let n = node t tid in
  n.held <- Iset.add mutex n.held;
  ignore (refresh t n)

let on_nested_reply t tid =
  (* The thread kept its worker across the nested invocation: resume. *)
  (Substrate.actions t.sub).resume_nested tid

let on_ws_event t tid ev =
  let n = node t tid in
  (match (ev : Sched_iface.ws_event) with
  | Ws_ready ->
    (* Speculation done; hold the workspace for the commit barrier but
       give the worker back so younger speculations can run. *)
    n.phase <- Spec_ready;
    t.ready <- t.ready + 1
  | Ws_unsafe ->
    (* The replica discarded the workspace (wait/notify/nested mid-
       speculation) and reset the thread; retry on the direct path under
       the ordinary graph rules. *)
    n.spec <- false;
    n.phase <- Waiting;
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "ws_aborts";
      Substrate.audit t.sub ~tid ~action:Audit.Abort_ws ~rule:Audit.Unsafe_op
        ()
    end);
  Decision.Pool.complete t.pool ~tid;
  rescan t

let on_terminate t tid =
  (match Hashtbl.find_opt t.nodes tid with
  | None -> ()
  | Some n ->
    Option.iter (remove_contrib t) n.contrib;
    n.contrib <- None;
    Hashtbl.remove t.nodes tid);
  Decision.Pool.complete t.pool ~tid;
  Substrate.retire t.sub ~tid;
  if Substrate.observing t.sub then Substrate.incr t.sub "commits";
  rescan t

let policy ?(spec = No_spec) ?(record_acq = false) ~early sub pool :
    Sched_iface.sched =
  let t =
    { sub; pool; early; spec; record_acq; nodes = Hashtbl.create 64;
      counts = Hashtbl.create 64; top_count = 0; inflight = 0; woken = 0;
      ready = 0; scanning = false; again = false }
  in
  let base =
    Sched_iface.no_op_sched ~name:(Substrate.name sub)
      ~on_request:(on_request t) ~on_lock:(on_lock t)
      ~on_wakeup:(on_wakeup t) ~on_nested_reply:(on_nested_reply t)
  in
  { base with
    on_ws_event = (fun tid ev -> on_ws_event t tid ev);
    on_acquired =
      (fun tid ~syncid ~mutex -> on_acquired t tid ~syncid ~mutex);
    on_unlock =
      (fun tid ~syncid ~mutex ~freed -> on_unlock t tid ~syncid ~mutex ~freed);
    on_wait = (fun tid ~mutex -> on_wait t tid ~mutex);
    on_reacquired = (fun tid ~mutex -> on_reacquired t tid ~mutex);
    on_terminate = on_terminate t;
    on_lockinfo =
      (fun tid ~syncid ~mutex ->
        Substrate.bk_lockinfo sub ~tid ~syncid ~mutex;
        if refresh t (node t tid) then rescan t);
    on_ignore =
      (fun tid ~syncid ->
        Substrate.bk_ignore sub ~tid ~syncid;
        if refresh t (node t tid) then rescan t);
    on_loop_enter =
      (fun tid ~loopid ->
        Substrate.bk_loop_enter sub ~tid ~loopid;
        if refresh t (node t tid) then rescan t);
    on_loop_exit =
      (fun tid ~loopid ->
        Substrate.bk_loop_exit sub ~tid ~loopid;
        if refresh t (node t tid) then rescan t) }

module Base : Decision.Parallel = struct
  let name = "cgs"

  let needs_prediction = true

  let policy sub pool = policy ~early:false sub pool
end

module Predicted : Decision.Parallel = struct
  let name = "pcgs"

  let needs_prediction = true

  let policy sub pool = policy ~early:true sub pool
end

module Workspace : Decision.Parallel = struct
  let name = "wss"

  let needs_prediction = true

  let policy sub pool =
    policy ~spec:Spec_all ~record_acq:true ~early:false sub pool
end

module Safety_net : Decision.Parallel = struct
  let name = "cgs+ws"

  let needs_prediction = true

  let policy sub pool = policy ~spec:Spec_top ~early:false sub pool
end
