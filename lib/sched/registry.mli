(** Name-based construction of decision modules.

    [needs_prediction] tells the replication layer which transformation the
    scheduler requires: predictive schedulers must run code produced by
    [Transform.predictive] (announcements, ignores, loop markers), the others
    run [Transform.basic] output. *)

type spec = {
  name : string;
  needs_prediction : bool;
  deterministic : bool;  (** [false] only for the freefall baseline *)
  parallel : bool;
      (** Whether the decision module drives a multi-worker pool
          ([Sched_config.workers]); {!instantiate} rejects [workers > 1]
          for serial specs. *)
  description : string;
  make :
    Sched_config.t ->
    Detmt_runtime.Sched_iface.actions ->
    Detmt_runtime.Sched_iface.sched;
      (** Low-level per-spec constructor.  {b Deprecated as a call-site API}:
          in-tree callers construct schedulers through {!instantiate} with a
          {!Sched_config.t}; the field remains as the registry's internal
          plumbing (see DESIGN.md). *)
}

val all : spec list
(** seq, sat, psat, lsa, pds, ppds, mat, mat-ll, pmat, cgs, pcgs, adaptive,
    freefall. *)

val paper_figure1 : string list
(** The five algorithms of Figure 1: seq, sat, lsa, pds, mat. *)

val deterministic_decisions : string list
(** Names of the deterministic decision modules — every registered
    deterministic scheduler except the adaptive meta-scheduler (which is a
    chooser over these, driven separately).  This is the set the fingerprint
    oracle and the cross-scheduler fuzz quantify over. *)

val parallel_decisions : string list
(** Names of the decision modules that accept [Sched_config.workers > 1]
    (the conflict-graph family). *)

val find : string -> spec option

val find_exn : string -> spec
(** @raise Invalid_argument on unknown names, listing the valid ones. *)

val instantiate :
  Sched_config.t ->
  Detmt_runtime.Sched_iface.actions ->
  Detmt_runtime.Sched_iface.sched
(** The one scheduler-construction entry point: look the named scheduler up
    and build it from the unified {!Sched_config.t} record.
    @raise Invalid_argument on an unknown scheduler name, when the named
    scheduler requires prediction and [cfg.summary] is [None], or when
    [cfg.workers > 1] and the scheduler is serial. *)
