(* PMAT — predicted MAT, the extension sketched in section 4.3.

   "Instead of only using one active primary thread, we aim at a queue of
   active threads that are in principle equal.  A thread t only gets a lock
   when all threads preceding it in the queue are already predicted and none
   of them conflicts with the lock requested by t."

   The queue is the arrival order — the substrate's admission index.  A
   pending lock request of thread t on mutex m is granted when:
   - m is free (or t already owns it — handled by the replica), and
   - every thread before t in the queue is predicted, and its future lock
     set (from the bookkeeping module) does not contain m.

   Pending requests are re-examined exactly at the paper's wake-up events:
   a conflicting mutex is released, a thread is removed from the list, or a
   preceding thread becomes predicted (lockInfo / ignore / loopExit).

   The paper leaves open "how the algorithm should proceed when a thread
   calls wait or does a nested invocation".  Our resolution (see DESIGN.md):
   a thread suspended in [wait] leaves the queue — otherwise the thread that
   should notify it could be blocked behind it, a guaranteed deadlock — and
   re-enters at the tail on its (deterministically ordered) notification; a
   thread suspended in a nested invocation keeps its place, which is
   conservative and deadlock-free because its reply always arrives.  Both
   rules only ever delay grants relative to an oracle, never reorder
   per-mutex acquisitions nondeterministically. *)

open Detmt_runtime
module Audit = Detmt_obs.Audit

type t = { sub : Substrate.t }

let predicted t tid = Substrate.predicted t.sub ~tid

let may_conflict t tid ~mutex = Substrate.future_may_lock t.sub ~tid ~mutex

(* Is the pending request of [th] grantable given all queue predecessors? *)
let eligible t ~preceding (th : Substrate.thread) =
  match th.pending with
  | None | Some Substrate.Resume -> false
  | Some (Substrate.Lock mutex | Substrate.Reacquire mutex) ->
    (Substrate.actions t.sub).mutex_free_for ~tid:th.tid ~mutex
    && List.for_all
         (fun (u : Substrate.thread) ->
           predicted t u.tid && not (may_conflict t u.tid ~mutex))
         preceding

let grant t ~preceding (th : Substrate.thread) =
  (if Substrate.observing t.sub then
     let action, mutex =
       match th.pending with
       | Some (Substrate.Lock mutex) -> (Audit.Grant_lock, mutex)
       | Some (Substrate.Reacquire mutex) -> (Audit.Grant_reacquire, mutex)
       | Some Substrate.Resume | None -> assert false
     in
     Substrate.incr t.sub "grants";
     Substrate.audit t.sub ~tid:th.tid ~action ~mutex
       ~rule:Audit.Predicted_no_conflict
       ~candidates:(List.map (fun (u : Substrate.thread) -> u.tid) preceding)
       ());
  Substrate.perform t.sub th

(* Scan the queue in order and grant every request that has become
   grantable; granting can cascade (the resumed thread may unlock, announce,
   terminate, ...), so restart until a fixpoint. *)
let rec rescan t =
  let rec scan preceding = function
    | [] -> false
    | th :: rest ->
      if eligible t ~preceding th then begin
        grant t ~preceding th;
        true
      end
      else scan (preceding @ [ th ]) rest
  in
  if scan [] (Substrate.threads t.sub) then rescan t

let on_request t tid =
  ignore (Substrate.admit t.sub ~tid);
  (Substrate.actions t.sub).start_thread tid

let on_lock t tid ~syncid:_ ~mutex =
  (Substrate.thread t.sub tid).pending <- Some (Substrate.Lock mutex);
  rescan t;
  (* If the request is still pending, explain why it was deferred: either
     the mutex is genuinely held, or an unpredicted / conflicting queue
     predecessor gates it (the crossover cost the paper's section 4.3
     analyses). *)
  if Substrate.observing t.sub then
    match Substrate.find_thread t.sub tid with
    | Some th when th.pending <> None ->
      Substrate.incr t.sub "deferrals";
      Substrate.audit t.sub ~tid ~action:Audit.Defer ~mutex
        ~rule:
          (if not ((Substrate.actions t.sub).mutex_free_for ~tid ~mutex) then
             Audit.Mutex_held
           else Audit.Predecessor_unpredicted)
        ~candidates:
          (List.filter_map
             (fun (u : Substrate.thread) ->
               if u.tid <> tid && not (predicted t u.tid) then Some u.tid
               else None)
             (Substrate.threads t.sub))
        ()
    | _ -> ()

let on_unlock t _tid ~syncid:_ ~mutex:_ ~freed = if freed then rescan t

let on_wait t tid ~mutex:_ =
  (* Leave the queue (the bookkeeping table survives); the monitor was
     released by the wait. *)
  Substrate.remove t.sub ~tid;
  rescan t

let on_wakeup t tid ~mutex =
  (* Re-enter at the tail, pending the monitor re-acquisition.  The position
     is deterministic: notifications are ordered by the deterministic
     execution. *)
  (Substrate.enqueue t.sub ~tid).pending <- Some (Substrate.Reacquire mutex);
  rescan t

let on_nested_reply t tid =
  (* The thread kept its queue position; it resumes freely (only lock
     acquisitions are gated). *)
  (Substrate.actions t.sub).resume_nested tid

let on_terminate t tid =
  Substrate.retire t.sub ~tid;
  rescan t

let policy sub : Sched_iface.sched =
  let t = { sub } in
  let base =
    Sched_iface.no_op_sched ~name:(Substrate.name sub)
      ~on_request:(on_request t) ~on_lock:(on_lock t) ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(on_nested_reply t)
  in
  { base with
    on_unlock =
      (fun tid ~syncid ~mutex ~freed -> on_unlock t tid ~syncid ~mutex ~freed);
    on_wait = (fun tid ~mutex -> on_wait t tid ~mutex);
    on_terminate = on_terminate t;
    on_acquired =
      (fun tid ~syncid ~mutex ->
        Substrate.bk_acquired sub ~tid ~syncid ~mutex;
        rescan t);
    on_lockinfo =
      (fun tid ~syncid ~mutex ->
        Substrate.bk_lockinfo sub ~tid ~syncid ~mutex;
        rescan t);
    on_ignore =
      (fun tid ~syncid ->
        Substrate.bk_ignore sub ~tid ~syncid;
        rescan t);
    on_loop_enter = (fun tid ~loopid -> Substrate.bk_loop_enter sub ~tid ~loopid);
    on_loop_exit =
      (fun tid ~loopid ->
        Substrate.bk_loop_exit sub ~tid ~loopid;
        rescan t) }

module Base : Decision.S = struct
  let name = "pmat"

  let needs_prediction = true

  let policy = policy
end
