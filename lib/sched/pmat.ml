(* PMAT — predicted MAT, the extension sketched in section 4.3.

   "Instead of only using one active primary thread, we aim at a queue of
   active threads that are in principle equal.  A thread t only gets a lock
   when all threads preceding it in the queue are already predicted and none
   of them conflicts with the lock requested by t."

   The queue is the arrival order.  A pending lock request of thread t on
   mutex m is granted when:
   - m is free (or t already owns it — handled by the replica), and
   - every thread before t in the queue is predicted, and its future lock
     set (from the bookkeeping module) does not contain m.

   Pending requests are re-examined exactly at the paper's wake-up events:
   a conflicting mutex is released, a thread is removed from the list, or a
   preceding thread becomes predicted (lockInfo / ignore / loopExit).

   The paper leaves open "how the algorithm should proceed when a thread
   calls wait or does a nested invocation".  Our resolution (see DESIGN.md):
   a thread suspended in [wait] leaves the queue — otherwise the thread that
   should notify it could be blocked behind it, a guaranteed deadlock — and
   re-enters at the tail on its (deterministically ordered) notification; a
   thread suspended in a nested invocation keeps its place, which is
   conservative and deadlock-free because its reply always arrives.  Both
   rules only ever delay grants relative to an oracle, never reorder
   per-mutex acquisitions nondeterministically. *)

open Detmt_runtime
module Recorder = Detmt_obs.Recorder
module Audit = Detmt_obs.Audit

type pending = Plock of int | Preacquire of int

type thread = { tid : int; mutable pending : pending option }

type t = {
  actions : Sched_iface.actions;
  bookkeeping : Bookkeeping.t;
  mutable order : thread list; (* the queue: arrival order *)
}

let find t tid = List.find (fun th -> th.tid = tid) t.order

let predicted t tid = Bookkeeping.predicted t.bookkeeping ~tid

let may_conflict t tid ~mutex =
  Bookkeeping.future_may_lock t.bookkeeping ~tid ~mutex

(* Is the pending request of [th] grantable given all queue predecessors? *)
let eligible t ~preceding th =
  match th.pending with
  | None -> false
  | Some (Plock mutex | Preacquire mutex) ->
    t.actions.mutex_free_for ~tid:th.tid ~mutex
    && List.for_all
         (fun u ->
           predicted t u.tid && not (may_conflict t u.tid ~mutex))
         preceding

let audit t ~tid ~action ?mutex ~rule ?candidates () =
  Recorder.decision t.actions.obs ~at:(t.actions.now ())
    ~replica:t.actions.replica_id ~scheduler:"pmat" ~tid ~action ?mutex ~rule
    ?candidates ()

let observing t = Recorder.enabled t.actions.obs

let grant t ~preceding th =
  let rec_grant action mutex =
    if observing t then begin
      Recorder.incr t.actions.obs "sched.pmat.grants";
      audit t ~tid:th.tid ~action ~mutex ~rule:Audit.Predicted_no_conflict
        ~candidates:(List.map (fun u -> u.tid) preceding)
        ()
    end
  in
  match th.pending with
  | Some (Plock mutex) ->
    th.pending <- None;
    rec_grant Audit.Grant_lock mutex;
    t.actions.grant_lock th.tid
  | Some (Preacquire mutex) ->
    th.pending <- None;
    rec_grant Audit.Grant_reacquire mutex;
    t.actions.grant_reacquire th.tid
  | None -> assert false

(* Scan the queue in order and grant every request that has become
   grantable; granting can cascade (the resumed thread may unlock, announce,
   terminate, ...), so restart until a fixpoint. *)
let rec rescan t =
  let rec scan preceding = function
    | [] -> false
    | th :: rest ->
      if eligible t ~preceding th then begin
        grant t ~preceding th;
        true
      end
      else scan (preceding @ [ th ]) rest
  in
  if scan [] t.order then rescan t

let on_request t tid =
  Bookkeeping.register t.bookkeeping ~tid
    ~meth:(t.actions.request_method tid);
  t.order <- t.order @ [ { tid; pending = None } ];
  t.actions.start_thread tid

let on_lock t tid ~syncid:_ ~mutex =
  (find t tid).pending <- Some (Plock mutex);
  rescan t;
  (* If the request is still pending, explain why it was deferred: either
     the mutex is genuinely held, or an unpredicted / conflicting queue
     predecessor gates it (the crossover cost the paper's section 4.3
     analyses). *)
  if observing t then
    match List.find_opt (fun th -> th.tid = tid) t.order with
    | Some th when th.pending <> None ->
      Recorder.incr t.actions.obs "sched.pmat.deferrals";
      audit t ~tid ~action:Audit.Defer ~mutex
        ~rule:
          (if not (t.actions.mutex_free_for ~tid ~mutex) then Audit.Mutex_held
           else Audit.Predecessor_unpredicted)
        ~candidates:
          (List.filter_map
             (fun u ->
               if u.tid <> tid && not (predicted t u.tid) then Some u.tid
               else None)
             t.order)
        ()
    | _ -> ()

let on_unlock t _tid ~syncid:_ ~mutex:_ ~freed = if freed then rescan t

let on_wait t tid ~mutex:_ =
  (* Leave the queue; the monitor was released by the wait. *)
  t.order <- List.filter (fun th -> th.tid <> tid) t.order;
  rescan t

let on_wakeup t tid ~mutex =
  (* Re-enter at the tail, pending the monitor re-acquisition.  The position
     is deterministic: notifications are ordered by the deterministic
     execution. *)
  t.order <- t.order @ [ { tid; pending = Some (Preacquire mutex) } ];
  rescan t

let on_nested_reply t tid =
  (* The thread kept its queue position; it resumes freely (only lock
     acquisitions are gated). *)
  t.actions.resume_nested tid

let on_terminate t tid =
  t.order <- List.filter (fun th -> th.tid <> tid) t.order;
  Bookkeeping.release t.bookkeeping ~tid;
  rescan t

let make ~summary (actions : Sched_iface.actions) : Sched_iface.sched =
  let t =
    { actions; bookkeeping = Bookkeeping.create ~summary:(Some summary) ();
      order = [] }
  in
  let bk = t.bookkeeping in
  let base =
    Sched_iface.no_op_sched ~name:"pmat"
      ~on_request:(on_request t)
      ~on_lock:(on_lock t)
      ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(on_nested_reply t)
  in
  { base with
    on_unlock =
      (fun tid ~syncid ~mutex ~freed ->
        on_unlock t tid ~syncid ~mutex ~freed);
    on_wait = (fun tid ~mutex -> on_wait t tid ~mutex);
    on_terminate = on_terminate t;
    on_acquired =
      (fun tid ~syncid ~mutex ->
        Bookkeeping.on_acquired bk ~tid ~syncid ~mutex;
        rescan t);
    on_lockinfo =
      (fun tid ~syncid ~mutex ->
        Bookkeeping.on_lockinfo bk ~tid ~syncid ~mutex;
        rescan t);
    on_ignore =
      (fun tid ~syncid ->
        Bookkeeping.on_ignore bk ~tid ~syncid;
        rescan t);
    on_loop_enter =
      (fun tid ~loopid -> Bookkeeping.on_loop_enter bk ~tid ~loopid);
    on_loop_exit =
      (fun tid ~loopid ->
        Bookkeeping.on_loop_exit bk ~tid ~loopid;
        rescan t) }
