(* Freefall — a deliberately NON-deterministic baseline.

   Models what an unmodified JVM does: locks are granted first-come
   first-served, but ties and wake-ups are broken by a per-replica random
   generator, the way OS scheduling jitter would.  Replicas diverge — the
   consistency checker must catch it.  This is the motivation experiment
   (E10): why deterministic multithreading is needed at all. *)

open Detmt_sim
open Detmt_runtime

type kind = Plock | Preacquire

type t = {
  sub : Substrate.t;
  rng : Rng.t;
  waiting : (int * kind) Candidate_index.t; (* tid -> (mutex, kind) *)
}

let grant t tid kind =
  Candidate_index.remove t.waiting tid;
  if Substrate.observing t.sub then Substrate.incr t.sub "grants";
  let actions = Substrate.actions t.sub in
  match kind with
  | Plock -> actions.grant_lock tid
  | Preacquire -> actions.grant_reacquire tid

(* Ascending tid by construction — the same order the replaced fold+sort
   produced, so the random pick consumes the rng stream identically. *)
let candidates t ~mutex =
  Candidate_index.fold t.waiting ~init:[] ~f:(fun tid (m, kind) acc ->
      if m = mutex then (tid, kind) :: acc else acc)
  |> List.rev

let wake_random t ~mutex =
  match candidates t ~mutex with
  | [] -> ()
  | cands ->
    (* Random pick: the per-replica divergence source. *)
    let tid, kind = List.nth cands (Rng.int t.rng (List.length cands)) in
    grant t tid kind

let on_lock t tid ~syncid:_ ~mutex =
  let actions = Substrate.actions t.sub in
  if actions.mutex_free_for ~tid ~mutex then actions.grant_lock tid
  else Candidate_index.add t.waiting ~key:tid (mutex, Plock)

let on_wakeup t tid ~mutex =
  let actions = Substrate.actions t.sub in
  if actions.mutex_free_for ~tid ~mutex then actions.grant_reacquire tid
  else Candidate_index.add t.waiting ~key:tid (mutex, Preacquire)

let policy sub : Sched_iface.sched =
  let actions = Substrate.actions sub in
  let t =
    { sub;
      rng = Rng.create (Int64.of_int (0x5EED + actions.replica_id));
      waiting = Candidate_index.create () }
  in
  let base =
    Sched_iface.no_op_sched ~name:(Substrate.name sub)
      ~on_request:(fun tid ->
        ignore (Substrate.admit sub ~tid);
        actions.start_thread tid)
      ~on_lock:(on_lock t) ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(fun tid -> actions.resume_nested tid)
  in
  { base with
    on_unlock =
      (fun _tid ~syncid:_ ~mutex ~freed -> if freed then wake_random t ~mutex);
    on_wait = (fun _tid ~mutex -> wake_random t ~mutex);
    on_terminate = (fun tid -> Substrate.retire sub ~tid) }

module Base : Decision.S = struct
  let name = "freefall"

  let needs_prediction = false

  let policy = policy
end
