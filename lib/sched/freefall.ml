(* Freefall — a deliberately NON-deterministic baseline.

   Models what an unmodified JVM does: locks are granted first-come
   first-served, but ties and wake-ups are broken by a per-replica random
   generator, the way OS scheduling jitter would.  Replicas diverge — the
   consistency checker must catch it.  This is the motivation experiment
   (E10): why deterministic multithreading is needed at all. *)

open Detmt_sim
open Detmt_runtime

type pending = Plock | Preacquire

type t = {
  actions : Sched_iface.actions;
  rng : Rng.t;
  waiting : (int, int * pending) Hashtbl.t; (* tid -> (mutex, kind) *)
}

let grant t tid kind =
  Hashtbl.remove t.waiting tid;
  if Detmt_obs.Recorder.enabled t.actions.obs then
    Detmt_obs.Recorder.incr t.actions.obs "sched.freefall.grants";
  match kind with
  | Plock -> t.actions.grant_lock tid
  | Preacquire -> t.actions.grant_reacquire tid

let candidates t ~mutex =
  Hashtbl.fold
    (fun tid (m, kind) acc -> if m = mutex then (tid, kind) :: acc else acc)
    t.waiting []
  |> List.sort compare

let wake_random t ~mutex =
  match candidates t ~mutex with
  | [] -> ()
  | cands ->
    (* Random pick: the per-replica divergence source. *)
    let tid, kind = List.nth cands (Rng.int t.rng (List.length cands)) in
    grant t tid kind

let on_lock t tid ~syncid:_ ~mutex =
  if t.actions.mutex_free_for ~tid ~mutex then t.actions.grant_lock tid
  else Hashtbl.replace t.waiting tid (mutex, Plock)

let on_wakeup t tid ~mutex =
  if t.actions.mutex_free_for ~tid ~mutex then t.actions.grant_reacquire tid
  else Hashtbl.replace t.waiting tid (mutex, Preacquire)

let make (actions : Sched_iface.actions) : Sched_iface.sched =
  let t =
    { actions;
      rng = Rng.create (Int64.of_int (0x5EED + actions.replica_id));
      waiting = Hashtbl.create 32 }
  in
  let base =
    Sched_iface.no_op_sched ~name:"freefall"
      ~on_request:(fun tid -> t.actions.start_thread tid)
      ~on_lock:(on_lock t)
      ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(fun tid -> t.actions.resume_nested tid)
  in
  { base with
    on_unlock =
      (fun _tid ~syncid:_ ~mutex ~freed ->
        if freed then wake_random t ~mutex);
    on_wait = (fun _tid ~mutex -> wake_random t ~mutex) }
