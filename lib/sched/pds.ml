(* PDS — preemptive deterministic scheduling (Basile et al. [1]) — and pPDS,
   its prediction-aware refinement.

   A pool of [pds_batch] worker slots executes requests concurrently; each
   thread runs until it requests its first lock.  Locks are granted only when
   every busy slot has "arrived" (reached a lock request, terminated or
   suspended): then the round is decided — requests are granted in thread-age
   order, conflicting ones serialised within the round — and the round ends
   once every granted lock has been released.  When the batch cannot fill,
   dummy messages are injected after a timeout so that requests are
   eventually processed; the price is additional group-communication load.

   Batch membership is a pure function of the delivery order: slots are
   filled from the totally-ordered backlog, and a member that terminates
   before the round decision keeps occupying its slot (it counts as arrived)
   until the decision consumes it.  This is what makes PDS replica-
   deterministic even when the transport skews delivery *times* across
   replicas — a local-time-based account of emptied slots would let one
   replica's round decision see a termination another replica has not
   witnessed yet, and batch compositions would drift apart.

   The paper's "optimised version [in which] each thread is allowed to
   request two locks" is implemented too: a round member that requests a
   second lock while still holding its round grant (nested synchronized
   blocks, hand-over-hand locking) joins the open round instead of stalling
   until the next one — without this, any nested acquisition would deadlock
   the round.

   Condition variables (the FTflex addition the paper calls "even more
   complicated"): a wait counts as a suspension for round accounting, and the
   re-acquisition after notify competes like a normal lock request in a later
   round.

   pPDS shrinks round membership with the bookkeeping module.  At the
   decision point, a member whose lock set is exactly known (predicted), is
   condvar-free, and provably cannot interact with any other live member —
   its closure (requested mutex plus future lock set) is untouched by every
   other slot member's possible future and currently unheld — is released
   from the round entirely: all its locks are granted on demand and the
   round does not wait for its releases.  Crucially the independent KEEPS
   its slot until it terminates, like a terminated member keeps its slot
   until the next decision.  No round decision can therefore happen while an
   independent runs, which keeps every eligibility input (bookkeeping state
   of stopped members, mutex owners) a deterministic function of the
   delivered prefix — the slot is the synchronisation point that replaces a
   timing-dependent liveness test.  Round grants can never touch an
   independent's closure (disjointness was checked against every member's
   future), so per-mutex acquisition orders are replica-invariant. *)

open Detmt_runtime
module Audit = Detmt_obs.Audit

type arrival =
  | A_lock of int (* mutex; includes monitor re-acquisitions *)
  | A_suspended (* condvar waits count as arrived; see [on_nested_begin] *)

type t = {
  sub : Substrate.t;
  batch : int;
  dummy_timeout_ms : float;
  mutable backlog : int Fqueue.t; (* delivered, not yet started, FIFO *)
  mutable slots : int list;
      (* current batch members in age (= delivery) order, terminated members
         included until the next round decision *)
  terminated : (int, unit) Hashtbl.t;
      (* batch members that finished before the decision; they count as
         arrived and as batch occupancy *)
  mutable ghost_slots : int;
      (* occupied-by-terminated slots restored from a state-transfer
         snapshot: the member identities are gone but the occupancy must
         survive, or a recovered replica's batches would fill differently *)
  arrived : (int, arrival) Hashtbl.t;
  reacquire : (int, unit) Hashtbl.t; (* pending op is a re-acquisition *)
  independent : (int, unit) Hashtbl.t;
      (* pPDS: members released from round discipline, running free until
         termination (their slot stays occupied, see above) *)
  indep_deferred : Waitq.t;
      (* pPDS: an independent's lock found its mutex held (defensive only —
         the launch conditions make the closure unreachable for others) *)
  mutable round_open : bool;
  mutable round_members : int list; (* threads whose lock this round decides *)
  round_grants : (int, int) Hashtbl.t; (* grants per member this round *)
  mutable round_waiting : (int * int) list; (* (tid, mutex), age order *)
  mutable second_waiting : (int * int) list;
      (* second-in-round requests, tid order; they yield to every decided
         request for the same mutex (see [grant_eligible]) *)
  mutable round_unreleased : (int * int) list; (* granted, not yet released *)
  mutable timer_armed : bool;
  mutable dummies_requested : int;
}

let occupancy t = t.ghost_slots + List.length t.slots

let observing t = Substrate.observing t.sub

let fill_slots t =
  while occupancy t < t.batch && not (Fqueue.is_empty t.backlog) do
    match Fqueue.pop t.backlog with
    | None -> ()
    | Some (tid, rest) ->
      t.backlog <- rest;
      t.slots <- t.slots @ [ tid ];
      if observing t then begin
        Substrate.incr t.sub "starts";
        Substrate.audit t.sub ~tid ~action:Audit.Start_thread
          ~rule:Audit.Fifo_head
          ~candidates:(Fqueue.to_list rest)
          ()
      end;
      (Substrate.actions t.sub).start_thread tid
  done

let grant t tid =
  let actions = Substrate.actions t.sub in
  if Hashtbl.mem t.reacquire tid then begin
    Hashtbl.remove t.reacquire tid;
    actions.grant_reacquire tid
  end
  else actions.grant_lock tid

(* Grant every still-waiting round member whose mutex is currently free.
   Decided requests go first, in age order; a second-in-round request is
   eligible only once no decided request for its mutex remains.  Without
   that priority the per-mutex owner order would depend on whether the
   second request was inserted before or after the release that freed the
   mutex — a local-time race that delivery skew resolves differently on
   different replicas. *)
let grant_eligible t =
  let actions = Substrate.actions t.sub in
  let issue rule (tid, mutex) =
    t.round_unreleased <- t.round_unreleased @ [ (tid, mutex) ];
    Hashtbl.replace t.round_grants tid
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.round_grants tid));
    if observing t then begin
      Substrate.incr t.sub "grants";
      Substrate.audit t.sub ~tid
        ~action:
          (if Hashtbl.mem t.reacquire tid then Audit.Grant_reacquire
           else Audit.Grant_lock)
        ~mutex ~rule
        ~candidates:(List.map fst t.round_waiting)
        ()
    end;
    grant t tid
  in
  let rec go () =
    let decided =
      List.find_opt
        (fun (tid, mutex) -> actions.mutex_free_for ~tid ~mutex)
        t.round_waiting
    in
    match decided with
    | Some (tid, mutex) ->
      t.round_waiting <- List.filter (fun (w, _) -> w <> tid) t.round_waiting;
      issue Audit.Round_decided (tid, mutex);
      go ()
    | None ->
      let second =
        List.find_opt
          (fun (tid, mutex) ->
            actions.mutex_free_for ~tid ~mutex
            && not (List.exists (fun (_, m) -> m = mutex) t.round_waiting))
          t.second_waiting
      in
      (match second with
      | None -> ()
      | Some (tid, mutex) ->
        t.second_waiting <-
          List.filter (fun (w, _) -> w <> tid) t.second_waiting;
        issue Audit.Round_second (tid, mutex);
        go ())
  in
  go ()

(* --------------------------- pPDS independence ------------------------- *)

(* The closure an independent may still touch: its requested mutex plus its
   exactly-known future lock set.  Only meaningful for predicted threads. *)
let closure t ~tid ~mutex =
  match Substrate.future_mutexes t.sub ~tid with
  | Some fs -> mutex :: fs
  | None -> [ mutex ]

(* Decision-point test: may [tid] leave the round discipline?  Every input
   is deterministic here — members are stopped, no independent is alive (its
   occupied slot would have blocked the decision), and every held mutex was
   acquired through an already-ended round. *)
let independence_eligible t ~requests:_ (tid, mutex) =
  Substrate.bookkeeping t.sub <> None
  && Substrate.predicted t.sub ~tid
  && (not (Substrate.uses_condvars t.sub ~tid))
  &&
  let actions = Substrate.actions t.sub in
  let c = closure t ~tid ~mutex in
  actions.mutex_free_for ~tid ~mutex
  (* Nothing in the closure may be held (a suspended holder could only
     release after a future round — which cannot happen while the
     independent lives — a guaranteed deadlock). *)
  && List.for_all
       (fun m ->
         match actions.mutex_owner m with
         | None -> true
         | Some owner -> owner = tid)
       c
  (* No other live member may ever touch the closure.  Unpredicted members
     answer [future_may_lock] with true and veto the launch; this also
     rejects overlapping independence candidates symmetrically. *)
  && List.for_all
       (fun u ->
         u = tid
         || List.for_all
              (fun m -> not (Substrate.future_may_lock t.sub ~tid:u ~mutex:m))
              c)
       t.slots

let launch_independent t (tid, mutex) =
  Hashtbl.replace t.independent tid ();
  Hashtbl.remove t.arrived tid;
  if observing t then begin
    Substrate.incr t.sub "independent_grants";
    Substrate.audit t.sub ~tid
      ~action:
        (if Hashtbl.mem t.reacquire tid then Audit.Grant_reacquire
         else Audit.Grant_lock)
      ~mutex ~rule:Audit.Predicted_no_conflict
      ~candidates:(List.filter (fun u -> u <> tid) t.slots)
      ()
  end;
  grant t tid

(* An independent's later lock requests are granted on sight: its closure is
   unreachable for every other thread until it terminates. *)
let independent_lock t tid ~mutex =
  if (Substrate.actions t.sub).mutex_free_for ~tid ~mutex then begin
    if observing t then begin
      Substrate.incr t.sub "grants";
      Substrate.audit t.sub ~tid ~action:Audit.Grant_lock ~mutex
        ~rule:Audit.Predicted_no_conflict ()
    end;
    grant t tid
  end
  else Waitq.push t.indep_deferred ~mutex tid

let drain_independent t ~mutex =
  if Hashtbl.length t.independent > 0 then
    match Waitq.pop t.indep_deferred ~mutex with
    | Some tid -> independent_lock t tid ~mutex
    | None -> ()

(* ------------------------------- rounds -------------------------------- *)

let rec end_round_if_done t =
  if
    t.round_open && t.round_waiting = [] && t.second_waiting = []
    && t.round_unreleased = []
  then begin
    t.round_open <- false;
    (* Member arrivals were consumed when the round was decided; records
       that appeared while the round was open (members reaching their next
       lock, threads suspending) survive into the next round. *)
    t.round_members <- [];
    fill_slots t;
    check_round t
  end

and check_round t =
  if (not t.round_open) && t.slots <> [] then begin
    let all_arrived =
      List.for_all
        (fun tid -> Hashtbl.mem t.arrived tid || Hashtbl.mem t.terminated tid)
        t.slots
    in
    let batch_full = occupancy t >= t.batch in
    if all_arrived && batch_full then begin
      (* Decision point: the batch is complete (possibly padded by members
         that already terminated — dummies, lock-free requests) and every
         live member is at a deterministic stop.  The decision consumes the
         terminated occupants and frees their slots. *)
      if observing t then begin
        Substrate.incr t.sub "rounds";
        Substrate.observe t.sub "occupancy" (float_of_int (occupancy t))
      end;
      t.ghost_slots <- 0;
      t.slots <-
        List.filter (fun tid -> not (Hashtbl.mem t.terminated tid)) t.slots;
      Hashtbl.reset t.terminated;
      Hashtbl.reset t.round_grants;
      let requests =
        List.filter_map
          (fun tid ->
            match Hashtbl.find_opt t.arrived tid with
            | Some (A_lock mutex) -> Some (tid, mutex)
            | Some A_suspended | None -> None)
          t.slots
      in
      (* pPDS: release provably independent members from the round before it
         opens; they keep their slot (blocking the next decision) but the
         round neither orders nor awaits them. *)
      let independents, requests =
        if Substrate.bookkeeping t.sub = None then ([], requests)
        else
          List.partition (independence_eligible t ~requests) requests
      in
      List.iter (launch_independent t) independents;
      if requests = [] then fill_slots t
      else begin
        t.round_open <- true;
        t.round_members <- List.map fst requests;
        t.round_waiting <- requests;
        t.second_waiting <- [];
        List.iter (fun tid -> Hashtbl.remove t.arrived tid) t.round_members;
        grant_eligible t;
        end_round_if_done t
      end
    end
    else arm_timer t
  end

(* The batch cannot decide while slots are missing; after the timeout the
   scheduler asks for dummy messages so that all requests are eventually
   processed even if no new external messages arrive. *)
and arm_timer t =
  let missing = t.batch - occupancy t in
  let stalled_on_arrivals =
    missing > 0 && Fqueue.is_empty t.backlog && Hashtbl.length t.arrived > 0
  in
  if stalled_on_arrivals && not t.timer_armed then begin
    t.timer_armed <- true;
    (Substrate.actions t.sub).schedule ~delay:t.dummy_timeout_ms (fun () ->
        t.timer_armed <- false;
        let missing_now = t.batch - occupancy t in
        if
          (not t.round_open) && missing_now > 0
          && Fqueue.is_empty t.backlog
          && Hashtbl.length t.arrived > 0
        then begin
          t.dummies_requested <- t.dummies_requested + missing_now;
          if observing t then
            Substrate.incr t.sub ~by:missing_now "dummies";
          for _ = 1 to missing_now do
            (Substrate.actions t.sub).inject_dummy ()
          done
        end)
  end

let on_request t tid =
  ignore (Substrate.admit t.sub ~tid);
  t.backlog <- Fqueue.push t.backlog tid;
  fill_slots t;
  check_round t

let on_lock t tid ~syncid:_ ~mutex =
  if Hashtbl.mem t.independent tid then independent_lock t tid ~mutex
  else
    let second_in_round =
      t.round_open
      && List.exists (fun (w, _) -> w = tid) t.round_unreleased
      && Option.value ~default:0 (Hashtbl.find_opt t.round_grants tid) < 2
    in
    if second_in_round then begin
      (* The optimised variant: a member still holding its round grant may
         request one more lock within the same round (nested synchronized
         blocks would otherwise deadlock the round).  It queues behind every
         decided request for the same mutex, in tid order among seconds. *)
      t.second_waiting <-
        List.sort compare (t.second_waiting @ [ (tid, mutex) ]);
      grant_eligible t;
      end_round_if_done t
    end
    else begin
      Hashtbl.replace t.arrived tid (A_lock mutex);
      if t.round_open then begin
        (* Arrived after the round was decided: wait for the next one. *)
        if observing t then begin
          Substrate.incr t.sub "deferrals";
          Substrate.audit t.sub ~tid ~action:Audit.Defer ~mutex
            ~rule:Audit.Batch_wait ~candidates:t.round_members ()
        end
      end
      else begin
        check_round t;
        (* Still waiting for the batch to complete or the round to decide. *)
        if observing t && Hashtbl.mem t.arrived tid then begin
          Substrate.incr t.sub "deferrals";
          Substrate.audit t.sub ~tid ~action:Audit.Defer ~mutex
            ~rule:Audit.Batch_wait ~candidates:t.slots ()
        end
      end
    end

let on_wakeup t tid ~mutex =
  Hashtbl.replace t.reacquire tid ();
  Hashtbl.replace t.arrived tid (A_lock mutex);
  if not t.round_open then check_round t

let on_unlock t tid ~syncid:_ ~mutex ~freed =
  if freed then begin
    drain_independent t ~mutex;
    if t.round_open then begin
      (match
         List.find_opt (fun (w, m) -> w = tid && m = mutex) t.round_unreleased
       with
      | Some entry ->
        t.round_unreleased <-
          List.filter (fun e -> e != entry) t.round_unreleased
      | None -> ());
      grant_eligible t;
      end_round_if_done t
    end
  end

let on_wait t tid ~mutex =
  ignore mutex;
  Hashtbl.replace t.arrived tid A_suspended;
  (* The wait may have released a mutex a round member needs. *)
  if t.round_open then begin
    (* A waiting round member cannot release its round lock anymore;
       treat its grant as released if it was granted this round. *)
    t.round_unreleased <-
      List.filter (fun (w, _) -> w <> tid) t.round_unreleased;
    grant_eligible t;
    end_round_if_done t
  end
  else check_round t

let on_nested_begin t tid =
  (* A member blocked on a nested invocation must NOT count as arrived: its
     resume is triggered by the nested-reply broadcast, and treating it as a
     deterministic stop would let the round decision race against that
     delivery — fast-network replicas would decide with the member's next
     lock request included, slow ones without it.  The reply has a fixed
     position in the total order, so stalling the decision until the member
     resumes and reaches a real stop is deterministic (and cheap: replies
     need no round of their own).  Condvar waits are different: notifies are
     synchronous within member executions, which all precede the decision,
     so a parked thread's wake status at the decision is order-determined. *)
  Hashtbl.remove t.arrived tid;
  if not t.round_open then check_round t

let on_nested_reply t tid =
  (* Resume immediately: the thread free-runs to its next lock request. *)
  Hashtbl.remove t.arrived tid;
  (Substrate.actions t.sub).resume_nested tid;
  if not t.round_open then check_round t

let on_terminate t tid =
  Hashtbl.remove t.independent tid;
  Substrate.retire t.sub ~tid;
  if List.mem tid t.slots then
    (* The slot stays occupied (and counts as arrived) until the next round
       decision — emptying it now would make the batch composition depend on
       local termination timing, which delivery skew de-synchronises across
       replicas.  Independents rely on the same rule: their occupied slot is
       what delays the next decision past their lifetime. *)
    Hashtbl.replace t.terminated tid ();
  Hashtbl.remove t.arrived tid;
  if t.round_open then begin
    t.round_unreleased <-
      List.filter (fun (w, _) -> w <> tid) t.round_unreleased;
    t.round_waiting <- List.filter (fun (w, _) -> w <> tid) t.round_waiting;
    t.second_waiting <- List.filter (fun (w, _) -> w <> tid) t.second_waiting;
    grant_eligible t;
    end_round_if_done t
  end
  else check_round t

let policy sub : Sched_iface.sched =
  let config = Substrate.config sub in
  let t =
    { sub; batch = config.Config.pds_batch;
      dummy_timeout_ms = config.Config.pds_dummy_timeout_ms;
      backlog = Fqueue.empty; slots = []; terminated = Hashtbl.create 16;
      ghost_slots = 0; arrived = Hashtbl.create 64;
      reacquire = Hashtbl.create 16; independent = Hashtbl.create 16;
      indep_deferred = Waitq.create (); round_open = false;
      round_members = []; round_grants = Hashtbl.create 16;
      round_waiting = []; second_waiting = []; round_unreleased = [];
      timer_armed = false; dummies_requested = 0 }
  in
  let base =
    Sched_iface.no_op_sched ~name:(Substrate.name sub)
      ~on_request:(on_request t) ~on_lock:(on_lock t) ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(on_nested_reply t)
  in
  { base with
    on_unlock =
      (fun tid ~syncid ~mutex ~freed -> on_unlock t tid ~syncid ~mutex ~freed);
    on_wait = (fun tid ~mutex -> on_wait t tid ~mutex);
    on_nested_begin = on_nested_begin t;
    on_terminate = on_terminate t;
    on_acquired =
      (fun tid ~syncid ~mutex -> Substrate.bk_acquired sub ~tid ~syncid ~mutex);
    on_lockinfo =
      (fun tid ~syncid ~mutex -> Substrate.bk_lockinfo sub ~tid ~syncid ~mutex);
    on_ignore = (fun tid ~syncid -> Substrate.bk_ignore sub ~tid ~syncid);
    on_loop_enter = (fun tid ~loopid -> Substrate.bk_loop_enter sub ~tid ~loopid);
    on_loop_exit = (fun tid ~loopid -> Substrate.bk_loop_exit sub ~tid ~loopid);
    (* At donor quiescence every member left in the slots has terminated;
       their occupancy pads the next batch and must transfer, or a
       recovered replica's rounds would open at different fill levels. *)
    snapshot =
      (fun () -> [ ("occupied_slots", t.ghost_slots + List.length t.slots) ]);
    restore =
      (fun kv ->
        List.iter
          (fun (k, v) -> if k = "occupied_slots" then t.ghost_slots <- v)
          kv) }

module Base : Decision.S = struct
  let name = "pds"

  let needs_prediction = false

  let policy = policy
end

module Predicted : Decision.S = struct
  let name = "ppds"

  let needs_prediction = true

  let policy = policy
end
