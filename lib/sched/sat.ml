(* SAT — single active thread (Jiménez-Peris et al. [6], Zhao et al. [13],
   FTflex variant [3]) — and pSAT, its prediction-aware refinement.

   Not concurrency: a new thread may start or resume only when the previously
   active thread suspends (wait, nested invocation, or a lock held by a
   suspended thread) or terminates.  Threads whose suspension reason has
   resolved are inserted into one FIFO queue; the queue head is activated at
   the next suspension point.  Uses the idle time of nested invocations,
   supports condition variables, but never keeps more than one CPU busy.

   pSAT applies the last-lock idea (Figure 2) to the token itself: when the
   bookkeeping module knows the active thread has passed its last lock
   acquisition and holds no mutex, the activation token is released early and
   the next queued thread starts while the lock-free tail of the previous one
   still runs.  Lock-free threads also resume nested replies without queueing
   for the token.  Such a thread can no longer interact with any mutex, so
   the per-mutex acquisition orders — the deterministic outcome SAT pays for
   — are unchanged; only idle CPU time is reclaimed. *)

open Detmt_runtime
module Audit = Detmt_obs.Audit

type item =
  | Start of int
  | Grant of int * int (* tid, mutex *)
  | Reacquire of int * int
  | Resume of int

type t = {
  sub : Substrate.t;
  mutable queue : item Fqueue.t; (* FIFO: head activates first *)
  reacquires : Waitq.t; (* blocked monitor re-acquisitions, per mutex *)
  mutable active : int option;
}

(* Blocked first acquisitions live in the substrate's per-mutex wait
   queues; blocked re-acquisitions in [t.reacquires].  Both preserve block
   order per mutex. *)

let item_tid = function
  | Start tid | Grant (tid, _) | Reacquire (tid, _) | Resume tid -> tid

let enqueue t item =
  t.queue <- Fqueue.push t.queue item;
  if Substrate.observing t.sub then
    Substrate.observe t.sub "queue_depth" (float_of_int (Fqueue.length t.queue))

(* pSAT: the active thread is past its last lock acquisition and holds
   nothing — it can never again influence a mutex acquisition order. *)
let lock_free t tid =
  Substrate.bookkeeping t.sub <> None
  && Substrate.no_future_locks t.sub ~tid
  && not ((Substrate.actions t.sub).holds_any_mutex tid)

let rec activate_next t =
  match Fqueue.pop t.queue with
  | None -> t.active <- None
  | Some (item, rest) -> (
    t.queue <- rest;
    let actions = Substrate.actions t.sub in
    let fifo_audit ~tid ~action ?mutex () =
      if Substrate.observing t.sub then begin
        Substrate.incr t.sub "activations";
        Substrate.audit t.sub ~tid ~action ?mutex ~rule:Audit.Fifo_head
          ~candidates:(List.map item_tid (Fqueue.to_list rest))
          ()
      end
    in
    match item with
    | Start tid ->
      t.active <- Some tid;
      fifo_audit ~tid ~action:Audit.Start_thread ();
      actions.start_thread tid;
      release_token_if_lock_free t tid
    | Grant (tid, mutex) ->
      if actions.mutex_free_for ~tid ~mutex then begin
        t.active <- Some tid;
        fifo_audit ~tid ~action:Audit.Grant_lock ~mutex ();
        actions.grant_lock tid
      end
      else begin
        (* The mutex was re-taken since this thread was queued: block again
           until the next release. *)
        if Substrate.observing t.sub then begin
          Substrate.incr t.sub "deferrals";
          Substrate.audit t.sub ~tid ~action:Audit.Defer ~mutex
            ~rule:Audit.Mutex_held ()
        end;
        Waitq.push (Substrate.waitq t.sub) ~mutex tid;
        activate_next t
      end
    | Reacquire (tid, mutex) ->
      if actions.mutex_free_for ~tid ~mutex then begin
        t.active <- Some tid;
        fifo_audit ~tid ~action:Audit.Grant_reacquire ~mutex ();
        actions.grant_reacquire tid
      end
      else begin
        if Substrate.observing t.sub then begin
          Substrate.incr t.sub "deferrals";
          Substrate.audit t.sub ~tid ~action:Audit.Defer ~mutex
            ~rule:Audit.Mutex_held ()
        end;
        Waitq.push t.reacquires ~mutex tid;
        activate_next t
      end
    | Resume tid ->
      t.active <- Some tid;
      fifo_audit ~tid ~action:Audit.Resume_nested ();
      actions.resume_nested tid;
      release_token_if_lock_free t tid)

(* pSAT early handoff: the activation token is freed while the lock-free
   tail of [tid] keeps running. *)
and release_token_if_lock_free t tid =
  if t.active = Some tid && lock_free t tid then begin
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "token_releases";
      Substrate.audit t.sub ~tid ~action:Audit.Handoff
        ~rule:Audit.Last_lock_handoff ()
    end;
    t.active <- None;
    activate_next t
  end

let suspend_active t tid =
  if t.active = Some tid then begin
    t.active <- None;
    activate_next t
  end

let on_request t tid =
  ignore (Substrate.admit t.sub ~tid);
  enqueue t (Start tid);
  if t.active = None then activate_next t

let on_lock t tid ~syncid:_ ~mutex =
  let actions = Substrate.actions t.sub in
  if actions.mutex_free_for ~tid ~mutex then begin
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "grants";
      Substrate.audit t.sub ~tid ~action:Audit.Grant_lock ~mutex
        ~rule:Audit.Mutex_free ()
    end;
    actions.grant_lock tid
  end
  else begin
    (* The holder must be a suspended thread; block until it releases. *)
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "deferrals";
      Substrate.audit t.sub ~tid ~action:Audit.Defer ~mutex
        ~rule:Audit.Mutex_held
        ~candidates:(Option.to_list (actions.mutex_owner mutex))
        ()
    end;
    Waitq.push (Substrate.waitq t.sub) ~mutex tid;
    suspend_active t tid
  end

(* The suspension reason of threads blocked on [mutex] has resolved: insert
   them into the queue, preserving block order (first acquisitions, then
   re-acquisitions, as the original release order interleaved them per
   queue). *)
let release_blocked t ~mutex =
  let rec drain q wrap =
    match Waitq.pop q ~mutex with
    | None -> ()
    | Some tid ->
      enqueue t (wrap tid);
      drain q wrap
  in
  drain (Substrate.waitq t.sub) (fun tid -> Grant (tid, mutex));
  drain t.reacquires (fun tid -> Reacquire (tid, mutex))

let on_unlock t tid ~syncid:_ ~mutex ~freed =
  if freed then begin
    release_blocked t ~mutex;
    release_token_if_lock_free t tid;
    if t.active = None then activate_next t
  end

let on_wait t tid ~mutex =
  (* The wait released the mutex: blocked threads become resumable.  No
     token-release check here — the waiter suspends anyway. *)
  release_blocked t ~mutex;
  suspend_active t tid

let on_wakeup t tid ~mutex =
  enqueue t (Reacquire (tid, mutex));
  if t.active = None then activate_next t

let on_nested_begin t tid = suspend_active t tid

let on_nested_reply t tid =
  if lock_free t tid then begin
    (* pSAT: a lock-free thread resumes without queueing for the token. *)
    if Substrate.observing t.sub then begin
      Substrate.incr t.sub "free_resumes";
      Substrate.audit t.sub ~tid ~action:Audit.Resume_nested
        ~rule:Audit.Last_lock_handoff ()
    end;
    (Substrate.actions t.sub).resume_nested tid
  end
  else begin
    enqueue t (Resume tid);
    if t.active = None then activate_next t
  end

let on_terminate t tid =
  Substrate.retire t.sub ~tid;
  suspend_active t tid

let policy sub : Sched_iface.sched =
  let t =
    { sub; queue = Fqueue.empty; reacquires = Waitq.create (); active = None }
  in
  let base =
    Sched_iface.no_op_sched ~name:(Substrate.name sub)
      ~on_request:(on_request t) ~on_lock:(on_lock t) ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(on_nested_reply t)
  in
  { base with
    on_unlock =
      (fun tid ~syncid ~mutex ~freed -> on_unlock t tid ~syncid ~mutex ~freed);
    on_wait = (fun tid ~mutex -> on_wait t tid ~mutex);
    on_nested_begin = on_nested_begin t;
    on_terminate = on_terminate t;
    on_acquired =
      (fun tid ~syncid ~mutex -> Substrate.bk_acquired sub ~tid ~syncid ~mutex);
    on_lockinfo =
      (fun tid ~syncid ~mutex ->
        Substrate.bk_lockinfo sub ~tid ~syncid ~mutex;
        release_token_if_lock_free t tid);
    on_ignore =
      (fun tid ~syncid ->
        Substrate.bk_ignore sub ~tid ~syncid;
        release_token_if_lock_free t tid);
    on_loop_enter = (fun tid ~loopid -> Substrate.bk_loop_enter sub ~tid ~loopid);
    on_loop_exit =
      (fun tid ~loopid ->
        Substrate.bk_loop_exit sub ~tid ~loopid;
        release_token_if_lock_free t tid) }

module Base : Decision.S = struct
  let name = "sat"

  let needs_prediction = false

  let policy = policy
end

module Predicted : Decision.S = struct
  let name = "psat"

  let needs_prediction = true

  let policy = policy
end
