(* SAT — single active thread (Jiménez-Peris et al. [6], Zhao et al. [13],
   FTflex variant [3]).

   Not concurrency: a new thread may start or resume only when the previously
   active thread suspends (wait, nested invocation, or a lock held by a
   suspended thread) or terminates.  Threads whose suspension reason has
   resolved are inserted into one FIFO queue; the queue head is activated at
   the next suspension point.  Uses the idle time of nested invocations,
   supports condition variables, but never keeps more than one CPU busy. *)

open Detmt_runtime
module Recorder = Detmt_obs.Recorder
module Audit = Detmt_obs.Audit

type item =
  | Start of int
  | Grant of int * int (* tid, mutex *)
  | Reacquire of int * int
  | Resume of int

type t = {
  actions : Sched_iface.actions;
  mutable queue : item list; (* FIFO: head activates first *)
  mutable blocked_locks : (int * int) list; (* (tid, mutex), block order *)
  mutable blocked_reacquires : (int * int) list;
  mutable active : int option;
}

let audit t ~tid ~action ?mutex ~rule ?candidates () =
  Recorder.decision t.actions.obs ~at:(t.actions.now ())
    ~replica:t.actions.replica_id ~scheduler:"sat" ~tid ~action ?mutex ~rule
    ?candidates ()

let observing t = Recorder.enabled t.actions.obs

let item_tid = function
  | Start tid | Grant (tid, _) | Reacquire (tid, _) | Resume tid -> tid

let enqueue t item =
  t.queue <- t.queue @ [ item ];
  if observing t then
    Recorder.observe t.actions.obs "sched.sat.queue_depth"
      (float_of_int (List.length t.queue))

let rec activate_next t =
  match t.queue with
  | [] -> t.active <- None
  | item :: rest -> (
    t.queue <- rest;
    let fifo_audit ~tid ~action ?mutex () =
      if observing t then begin
        Recorder.incr t.actions.obs "sched.sat.activations";
        audit t ~tid ~action ?mutex ~rule:Audit.Fifo_head
          ~candidates:(List.map item_tid rest) ()
      end
    in
    match item with
    | Start tid ->
      t.active <- Some tid;
      fifo_audit ~tid ~action:Audit.Start_thread ();
      t.actions.start_thread tid
    | Grant (tid, mutex) ->
      if t.actions.mutex_free_for ~tid ~mutex then begin
        t.active <- Some tid;
        fifo_audit ~tid ~action:Audit.Grant_lock ~mutex ();
        t.actions.grant_lock tid
      end
      else begin
        (* The mutex was re-taken since this thread was queued: block again
           until the next release. *)
        if observing t then begin
          Recorder.incr t.actions.obs "sched.sat.deferrals";
          audit t ~tid ~action:Audit.Defer ~mutex ~rule:Audit.Mutex_held ()
        end;
        t.blocked_locks <- t.blocked_locks @ [ (tid, mutex) ];
        activate_next t
      end
    | Reacquire (tid, mutex) ->
      if t.actions.mutex_free_for ~tid ~mutex then begin
        t.active <- Some tid;
        fifo_audit ~tid ~action:Audit.Grant_reacquire ~mutex ();
        t.actions.grant_reacquire tid
      end
      else begin
        if observing t then begin
          Recorder.incr t.actions.obs "sched.sat.deferrals";
          audit t ~tid ~action:Audit.Defer ~mutex ~rule:Audit.Mutex_held ()
        end;
        t.blocked_reacquires <- t.blocked_reacquires @ [ (tid, mutex) ];
        activate_next t
      end
    | Resume tid ->
      t.active <- Some tid;
      fifo_audit ~tid ~action:Audit.Resume_nested ();
      t.actions.resume_nested tid)

let suspend_active t tid =
  if t.active = Some tid then begin
    t.active <- None;
    activate_next t
  end

let on_request t tid =
  enqueue t (Start tid);
  if t.active = None then activate_next t

let on_lock t tid ~syncid:_ ~mutex =
  if t.actions.mutex_free_for ~tid ~mutex then begin
    if observing t then begin
      Recorder.incr t.actions.obs "sched.sat.grants";
      audit t ~tid ~action:Audit.Grant_lock ~mutex ~rule:Audit.Mutex_free ()
    end;
    t.actions.grant_lock tid
  end
  else begin
    (* The holder must be a suspended thread; block until it releases. *)
    if observing t then begin
      Recorder.incr t.actions.obs "sched.sat.deferrals";
      audit t ~tid ~action:Audit.Defer ~mutex ~rule:Audit.Mutex_held
        ~candidates:(Option.to_list (t.actions.mutex_owner mutex))
        ()
    end;
    t.blocked_locks <- t.blocked_locks @ [ (tid, mutex) ];
    suspend_active t tid
  end

let on_unlock t _tid ~syncid:_ ~mutex ~freed =
  if freed then begin
    (* The suspension reason of threads blocked on this mutex has resolved:
       insert them into the queue, preserving block order. *)
    let ready, rest =
      List.partition (fun (_, m) -> m = mutex) t.blocked_locks
    in
    t.blocked_locks <- rest;
    List.iter (fun (tid, m) -> enqueue t (Grant (tid, m))) ready;
    let ready_r, rest_r =
      List.partition (fun (_, m) -> m = mutex) t.blocked_reacquires
    in
    t.blocked_reacquires <- rest_r;
    List.iter (fun (tid, m) -> enqueue t (Reacquire (tid, m))) ready_r;
    if t.active = None then activate_next t
  end

let on_wait t tid ~mutex =
  (* The wait released the mutex: blocked threads become resumable. *)
  on_unlock t tid ~syncid:(-1) ~mutex ~freed:true;
  suspend_active t tid

let on_wakeup t tid ~mutex =
  enqueue t (Reacquire (tid, mutex));
  if t.active = None then activate_next t

let on_nested_begin t tid = suspend_active t tid

let on_nested_reply t tid =
  enqueue t (Resume tid);
  if t.active = None then activate_next t

let on_terminate t tid = suspend_active t tid

let make (actions : Sched_iface.actions) : Sched_iface.sched =
  let t =
    { actions; queue = []; blocked_locks = []; blocked_reacquires = [];
      active = None }
  in
  let base =
    Sched_iface.no_op_sched ~name:"sat"
      ~on_request:(on_request t)
      ~on_lock:(on_lock t)
      ~on_wakeup:(on_wakeup t)
      ~on_nested_reply:(on_nested_reply t)
  in
  { base with
    on_unlock = (fun tid ~syncid ~mutex ~freed ->
        on_unlock t tid ~syncid ~mutex ~freed);
    on_wait = (fun tid ~mutex -> on_wait t tid ~mutex);
    on_nested_begin = on_nested_begin t;
    on_terminate = on_terminate t }
