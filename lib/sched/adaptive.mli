(** Adaptive scheduler selection (section 5 future work: "a request analyser
    that chooses the appropriate scheduler at runtime depending on the client
    interaction patterns and the methods lock pattern").

    A meta decision module that delegates to a child scheduler and, at
    quiescent points (no thread alive) after every [window] delivered
    requests, re-evaluates which child fits the observed interaction
    pattern:

    - effectively sequential clients (observed concurrency ≈ 1): SEQ — no
      parallelism to exploit, and the simplest discipline has the lowest
      overhead;
    - a fully predictable lock pattern (every start method analysable, no
      fallback): predicted SAT when the overlap is marginal (the token
      rarely blocks and prediction releases it early), predicted MAT in the
      common concurrent range, and predicted PDS under heavy fan-in where
      batched rounds amortise the per-event decision cost;
    - otherwise: MAT, the most flexible pessimistic algorithm.

    - with a worker pool ([Sched_config.workers > 1]) and a window in which
      lock requests almost never found the mutex held, the conflict-graph
      scheduler (CGS): class-disjoint requests run concurrently, the one
      regime where any serial token costs real throughput.

    Prediction-based children fall back to their pessimistic base module
    (psat→sat, pmat→mat, ppds→pds, cgs/pcgs→mat) when no summary is
    available.

    Every input to the decision (delivery and termination order, the static
    summary, the contention counts — deterministic because the child's
    execution is) is identical on all replicas, and switches happen only
    when no thread exists, so the hand-over is trivially deterministic. *)

val recommend :
  workers:int ->
  conflict_rate:float ->
  summary:Detmt_analysis.Predict.class_summary option ->
  avg_concurrency:float ->
  string
(** The pure decision function, exposed for tests.  [workers] is the
    configured pool width; [conflict_rate] is the fraction of lock requests
    that found the mutex held in the observed window ([1.0] when nothing has
    been measured) — CGS is recommended only when both a pool is available
    and contention is near zero. *)

val of_config :
  ?window:int ->
  ?on_switch:(string -> unit) ->
  Sched_config.t ->
  Detmt_runtime.Sched_iface.actions ->
  Detmt_runtime.Sched_iface.sched
(** Build the meta-scheduler from the unified {!Sched_config.t} record
    (the [scheduler] field is ignored — this {e is} the adaptive scheduler).
    [window] (default 20) is the number of requests observed between
    re-evaluations; [on_switch] fires with the new child's name whenever the
    delegate changes (including the initial choice).  This is the only
    constructor: the deprecated [make ~config ~summary] entry point was
    removed once {!Registry.instantiate} became the single construction
    path. *)
