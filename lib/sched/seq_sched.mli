(** SEQ — strictly sequential request execution in total order: one request
    runs from start to finish before the next starts.  Trivially
    deterministic, single-CPU, wastes nested-invocation idle time
    (section 3.1). *)

module Base : Decision.S
(** ["seq"], no prediction. *)
