(** SEQ — strictly sequential request execution in total order: one request
    runs from start to finish before the next starts.  Trivially
    deterministic, single-CPU, wastes nested-invocation idle time
    (section 3.1). *)

module Base : Decision.S
(** ["seq"], no prediction. *)

val make : Detmt_runtime.Sched_iface.actions -> Detmt_runtime.Sched_iface.sched
(** [Base] with the default configuration and no summary. *)
