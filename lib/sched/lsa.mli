(** LSA — loose synchronisation algorithm (Basile et al. [2]).

    Leader/follower: the leader schedules greedily and broadcasts every lock
    grant as a control message; followers enforce the leader's per-mutex
    order.  The only algorithm requiring frequent inter-replica
    communication — fastest on a LAN (the client takes the leader's first
    reply), but WAN-sensitive and paying a take-over delay when the leader
    fails (section 3.2, 3.5).

    A follower promoted by a view change first drains the dead leader's
    already-published decisions (identical on all survivors thanks to total
    order) and then switches to greedy mode. *)

module Base : Decision.S
(** ["lsa"], no prediction. *)
