(** One-call experiment runners.

    Each paper artefact (figures 1–4, the section 3.5 comparison claims, and
    the section 5 overhead question) has a function here that builds the
    whole simulated system, runs it, and returns printable tables — the same
    rows/series the paper reports.  The benchmark harness and the CLI are
    thin wrappers over this module. *)

type run_result = {
  scheduler : string;
  clients : int;
  replies : int;
  mean_response_ms : float;
  p95_response_ms : float;
  throughput_per_s : float;
  broadcasts : int;
  message_kinds : (string * int) list;
  consistent : bool;
  cpu_busy_ms : float;  (** replica 0 *)
  duration_ms : float;  (** virtual makespan *)
}

val run_workload :
  ?seed:int64 ->
  ?params:Detmt_replication.Active.params ->
  ?requests_per_client:int ->
  ?obs:Detmt_obs.Recorder.t ->
  scheduler:string ->
  clients:int ->
  cls:Detmt_lang.Class_def.t ->
  gen:Detmt_replication.Client.request_gen ->
  unit ->
  run_result
(** Run one configuration to completion and summarise it.  [obs] (default
    disabled) is the flight recorder threaded through the whole system; it
    never changes the run — reply tables and trace fingerprints are
    bit-identical with recording on or off.
    @raise Failure if the simulation deadlocks. *)

val figure1 :
  ?clients_list:int list ->
  ?schedulers:string list ->
  ?requests_per_client:int ->
  ?workload:Detmt_workload.Figure1.params ->
  unit ->
  Detmt_stats.Table.t * Detmt_stats.Series.t list
(** E1: mean response time vs number of clients, 3 replicas. *)

val figure1b :
  ?clients_list:int list -> ?schedulers:string list -> unit ->
  Detmt_stats.Table.t
(** E1b ablation: the compute-heavy variant — a lock-free front computation
    per request, where MAT's concurrent secondaries beat SAT clearly. *)

val figure2 :
  ?clients_list:int list -> unit -> Detmt_stats.Table.t
(** E2: the last-lock hand-off — MAT vs MAT+LL vs PMAT on the tail-compute
    workload. *)

val figure3 :
  ?clients_list:int list -> unit -> Detmt_stats.Table.t
(** E3: disjoint mutex sets — pessimistic MAT vs predicted MAT. *)

val timeline :
  ?scheduler:string ->
  ?workload:[ `Tail | `Disjoint ] ->
  ?clients:int ->
  ?requests:int ->
  unit ->
  Detmt_sim.Timeline.t
(** Per-thread schedule of a small run — the visual form of Figures 2/3;
    render with {!Detmt_sim.Timeline.render}. *)

val figure4 : unit -> string
(** E4: the code transformation of the paper's [foo] example, rendered
    before and after. *)

val wan :
  ?latencies_ms:float list -> ?clients:int -> unit -> Detmt_stats.Table.t
(** E5: LSA vs MAT under growing network latency. *)

type failover_row = {
  f_scheduler : string;
  f_takeover_ms : float;
  f_replies_after : int;
  f_consistent_after : bool;
}

val failover : ?schedulers:string list -> unit -> Detmt_stats.Table.t
(** E6: leader-failure take-over time. *)

val pds_batch :
  ?batches:int list -> ?clients_list:int list -> unit -> Detmt_stats.Table.t
(** E7: PDS batch-size sensitivity and dummy-message overhead. *)

val overhead :
  ?bookkeeping_ms:float list -> ?clients:int -> unit -> Detmt_stats.Table.t
(** E8: prediction gain vs bookkeeping cost — the section 5 crossover. *)

val saturation :
  ?rates:float list ->
  ?schedulers:string list ->
  ?requests:int ->
  unit ->
  Detmt_stats.Table.t
(** E13: open-loop (Poisson) load sweep — where each scheduler saturates. *)

val model :
  ?clients_list:int list -> ?schedulers:string list -> unit ->
  Detmt_stats.Table.t
(** E11: the section-5 analytic model against the simulator, per scheduler
    and client count. *)

val interference : unit -> Detmt_analysis.Interference.report
(** E12: the section-5 interference analysis on a four-method example. *)

val prodcons :
  ?schedulers:string list -> ?clients:int -> unit -> Detmt_stats.Table.t
(** E9: condition-variable workload across schedulers. *)

val determinism :
  ?schedulers:string list -> unit -> Detmt_stats.Table.t
(** E10: replica-consistency matrix; the freefall baseline must diverge. *)

val costed : (unit -> 'a) -> 'a * float * float * float
(** [costed f] runs [f] and returns [(result, wall_ms, minor_words,
    major_words)] — host wall clock and {!Gc.quick_stat} allocation deltas
    around the call.  Host-side measurements only; never a virtual-time
    input. *)

type shard_row = {
  s_shards : int;
  s_clients : int;
  s_cross_ratio : float;
  s_expected : int;
  s_replies : int;
  s_fast_path : int;
  s_cross_shard : int;
  s_mean_response_ms : float;
  s_p95_response_ms : float;
  s_throughput_per_s : float;
  s_broadcasts : int;
  s_wire_batches : int;
  s_consistent : bool;
  s_fingerprint : int64;  (** {!Detmt_replication.Shard.fingerprint} *)
  s_duration_ms : float;
  s_wall_ms : float;  (** host wall clock around the run *)
  s_minor_words : float;  (** GC words allocated by the run *)
  s_major_words : float;
  s_series_points : int;  (** windowed-series samples recorded *)
  s_peak_pending : float;  (** peak engine queue depth observed *)
}

val run_shard :
  ?seed:int64 ->
  ?scheduler:string ->
  ?workers:int ->
  ?requests_per_client:int ->
  ?batching:Detmt_gcs.Totem.batching ->
  ?obs:Detmt_obs.Recorder.t ->
  ?workload:Detmt_workload.Sharded.params ->
  shards:int ->
  clients:int ->
  unit ->
  shard_row
(** One sharded run of the {!Detmt_workload.Sharded} workload to
    completion.  [workers] (default 1) is the per-group simulated pool
    width, legal only for parallel schedulers. *)

val shard_sweep :
  ?seed:int64 ->
  ?shards_list:int list ->
  ?clients_list:int list ->
  ?cross_ratios:float list ->
  ?scheduler:string ->
  ?workers:int ->
  ?requests_per_client:int ->
  ?batching:Detmt_gcs.Totem.batching ->
  unit ->
  shard_row list
(** E14: the scaling grid — shard count x client count x cross-shard
    ratio (defaults: shards 1/2/4/8, 64/256/1024 clients, 0%% and 10%%
    transfers, MAT inside each group).  Row order is clients-major, then
    cross ratio, then shard count. *)

val shard_table : shard_row list -> Detmt_stats.Table.t
(** Printable form; the speedup column is relative to the 1-shard row with
    the same clients and cross ratio. *)

val shard_json : shard_row list -> Detmt_obs.Json.t
(** The BENCH_shard.json payload: one object per row, with the speedup and
    the run fingerprint included. *)

(** {2 E16 — elastic reconfiguration} *)

type elastic_mode =
  | Static of int  (** a fixed group count for the whole run *)
  | Autoscale of Detmt_replication.Reconfig.policy
      (** start at one group; the controller splits / merges / hot-swaps *)

type elastic_row = {
  e_mode : string;  (** ["static-N"] or ["autoscale"] *)
  e_clients : int;
  e_expected : int;
  e_replies : int;
  e_groups_final : int;
  e_epoch : int;  (** reconfiguration transitions applied *)
  e_splits : int;
  e_merges : int;
  e_swaps : int;
  e_held : int;  (** submissions held behind a reconfiguration barrier *)
  e_cross_group : int;
  e_mean_response_ms : float;
  e_p95_response_ms : float;
  e_throughput_per_s : float;
  e_states_agree : bool;
  e_epochs_agree : bool;
  e_fingerprint : int64;  (** {!Detmt_replication.Reconfig.fingerprint} *)
  e_duration_ms : float;
  e_wall_ms : float;  (** host wall clock around the run *)
  e_minor_words : float;  (** GC words allocated by the run *)
  e_major_words : float;
  e_series_points : int;  (** windowed-series samples recorded *)
  e_peak_pending : float;  (** peak engine queue depth observed *)
}

val run_elastic :
  ?seed:int64 ->
  ?scheduler:string ->
  ?requests_per_client:int ->
  ?obs:Detmt_obs.Recorder.t ->
  ?workload:Detmt_workload.Hotspot.params ->
  mode:elastic_mode ->
  clients:int ->
  unit ->
  elastic_row
(** One run of the Zipf-hotspot workload over {!Detmt_replication.Reconfig}
    to completion. *)

val elastic_bench_policy : Detmt_replication.Reconfig.policy
(** The grid's controller setting: 0.5 ms ticks, split above queue depth 4,
    never merge, up to 16 live groups — twice the static grid's ceiling. *)

val elastic_bench_workload : Detmt_workload.Hotspot.params
(** {!Detmt_workload.Hotspot.default} with the hotspot drifting every 8
    requests, so a 16-request run sees the zone move twice. *)

val elastic_sweep :
  ?seed:int64 ->
  ?static_shards:int list ->
  ?clients_list:int list ->
  ?scheduler:string ->
  ?requests_per_client:int ->
  ?policy:Detmt_replication.Reconfig.policy ->
  ?workload:Detmt_workload.Hotspot.params ->
  unit ->
  elastic_row list
(** E16: per client count (default 256 and 1024), every static shard count
    (default 1/2/4/8) followed by the autoscaling run under [policy]
    (default {!elastic_bench_policy}; 16 requests per client over
    {!elastic_bench_workload}). *)

val elastic_table : elastic_row list -> Detmt_stats.Table.t
(** Printable form; the [vs best static] column is the best static p95 of
    the same client count divided by the autoscaler's p95 (above 1.00x the
    autoscaler wins). *)

val elastic_json : elastic_row list -> Detmt_obs.Json.t
(** The BENCH_elastic.json payload: one object per row, including
    [p95_speedup_vs_best_static] on the autoscale rows. *)

(** {2 E19 — conflict-graph parallel scheduling} *)

type parallel_row = {
  pl_scheduler : string;
  pl_workers : int;
  pl_clients : int;
  pl_expected : int;
  pl_replies : int;
  pl_mean_response_ms : float;
  pl_p95_response_ms : float;
  pl_throughput_per_s : float;
  pl_consistent : bool;
  pl_duration_ms : float;
}

val parallel_workload : Detmt_workload.Figure1.params
(** The low-conflict grid setting: {!Detmt_workload.Figure1.default} with
    4096 mutexes (so two requests almost never share one) and no nested
    calls (so pMAT's announcement gating is pure overhead). *)

val parallel_pool :
  ?seed:int64 ->
  ?clients_list:int list ->
  ?workers_list:int list ->
  ?requests_per_client:int ->
  ?workload:Detmt_workload.Figure1.params ->
  unit ->
  parallel_row list
(** E19: per client count (default 64/256/1024), the serial pMAT baseline
    followed by cgs and pcgs at every pool width (default 1/2/4/8).  The
    reproduction target: on this workload cgs at 4 workers beats pMAT at
    1024 clients on mean response time. *)

val parallel_table : parallel_row list -> Detmt_stats.Table.t

val parallel_json : parallel_row list -> Detmt_obs.Json.t
(** The [parallel] section of BENCH_fig1.json: one object per grid row. *)

(** {2 E20 — deterministic workspaces} *)

val workspace_workload : Detmt_workload.Sharded.params
(** The misprediction setting: {!Detmt_workload.Sharded.default} with no
    transfers and [opaque_ratio = 0.25] — a quarter of the requests
    synchronise through a local the prediction analysis cannot resolve,
    so their conflict class is [Top]. *)

val workspace_pool :
  ?seed:int64 ->
  ?clients_list:int list ->
  ?workers_list:int list ->
  ?requests_per_client:int ->
  ?workload:Detmt_workload.Sharded.params ->
  unit ->
  parallel_row list
(** E20a: per client count (default 64/256), cgs, cgs+ws and wss at every
    pool width (default 1/4).  The reproduction target: cgs+ws at 4
    workers beats plain cgs at 4 workers on mean response time, because
    the workspace absorbs the [Top]-class serialisation. *)

val workspace_table : parallel_row list -> Detmt_stats.Table.t

val workspace_json : parallel_row list -> Detmt_obs.Json.t
(** The [parallel.opaque] sub-section of BENCH_fig1.json. *)

val tail_release_workload : Detmt_workload.Tail_compute.params
(** The early-release setting: {!Detmt_workload.Tail_compute.default} — a
    1 ms critical section on one shared mutex followed by a 20 ms
    lock-free tail, so a scheduler that holds the static class until
    request termination serialises the tails. *)

val tail_release_pool :
  ?seed:int64 ->
  ?clients_list:int list ->
  ?workers_list:int list ->
  ?requests_per_client:int ->
  ?workload:Detmt_workload.Tail_compute.params ->
  unit ->
  parallel_row list
(** E20b: per client count (default 16/64), cgs and pcgs at every pool
    width (default 1/4).  The reproduction target: pcgs at 4 workers
    beats cgs at 4 workers, demonstrating that early release (not just
    graph dispatch) is what overlaps the tails. *)

val tail_release_table : parallel_row list -> Detmt_stats.Table.t

val tail_release_json : parallel_row list -> Detmt_obs.Json.t
(** The [tail_release] section of BENCH_fig1.json. *)
