open Detmt_sim
open Detmt_stats
open Detmt_replication

type run_result = {
  scheduler : string;
  clients : int;
  replies : int;
  mean_response_ms : float;
  p95_response_ms : float;
  throughput_per_s : float;
  broadcasts : int;
  message_kinds : (string * int) list;
  consistent : bool;
  cpu_busy_ms : float;
  duration_ms : float;
}

let run_workload ?(seed = 42L) ?(params = Active.default_params)
    ?(requests_per_client = 10) ?(obs = Detmt_obs.Recorder.disabled)
    ~scheduler ~clients ~cls ~gen () =
  let engine = Engine.create () in
  let params = { params with Active.scheduler } in
  let system = Active.create ~obs ~engine ~cls ~params () in
  Client.run_clients ~engine ~system ~clients ~requests_per_client ~gen ~seed
    ();
  let times = Active.response_times system in
  let duration_ms = Engine.now engine in
  let report = Consistency.check (Active.live_replicas system) in
  (* Observable consistency: states and per-mutex acquisition orders.  Full
     trace identity additionally holds for all schedulers except LSA (the
     determinism matrix shows the fine-grained picture). *)
  let observably_consistent =
    report.Consistency.states_agree && report.Consistency.acquisitions_agree
  in
  let replies = Active.replies_received system in
  { scheduler; clients; replies;
    mean_response_ms = Summary.mean times;
    p95_response_ms = Summary.quantile times 0.95;
    throughput_per_s =
      (if duration_ms > 0.0 then 1000.0 *. float_of_int replies /. duration_ms
       else 0.0);
    broadcasts = Active.broadcasts system;
    message_kinds = Active.message_stats system;
    consistent = observably_consistent;
    cpu_busy_ms =
      (match Active.replicas system with
      | r :: _ -> Detmt_runtime.Replica.cpu_busy_ms r
      | [] -> 0.0);
    duration_ms }

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1                                                       *)

let default_clients = [ 1; 2; 4; 8; 16; 32 ]

let figure1 ?(clients_list = default_clients)
    ?(schedulers = Detmt_sched.Registry.paper_figure1)
    ?(requests_per_client = 10) ?(workload = Detmt_workload.Figure1.default)
    () =
  let cls = Detmt_workload.Figure1.cls workload in
  let gen = Detmt_workload.Figure1.gen workload in
  let table =
    Table.create
      ~title:
        "Figure 1: mean response time (ms) vs #clients, 3 replicas \
         (10-iteration method; p=0.2 nested 12ms; p=0.2 compute 10ms; 100 \
         mutexes)"
      ~columns:("clients" :: schedulers)
  in
  let series =
    List.map (fun s -> Series.create ~name:s) schedulers
  in
  List.iter
    (fun clients ->
      let row =
        List.map
          (fun scheduler ->
            let r =
              run_workload ~scheduler ~clients ~requests_per_client ~cls ~gen
                ()
            in
            r.mean_response_ms)
          schedulers
      in
      List.iter2
        (fun s y -> Series.add s ~x:(float_of_int clients) ~y)
        series row;
      Table.add_float_row table ~label:(string_of_int clients) row)
    clients_list;
  (table, series)

let figure1b ?(clients_list = default_clients)
    ?(schedulers = Detmt_sched.Registry.paper_figure1 @ [ "pmat" ]) () =
  let workload = Detmt_workload.Figure1.compute_heavy in
  let cls = Detmt_workload.Figure1.cls workload in
  let gen = Detmt_workload.Figure1.gen workload in
  let table =
    Table.create
      ~title:
        "Figure 1 ablation (compute-heavy): 20ms lock-free front \
         computation per request — mean response time (ms) vs #clients"
      ~columns:("clients" :: schedulers)
  in
  List.iter
    (fun clients ->
      let row =
        List.map
          (fun scheduler ->
            (run_workload ~scheduler ~clients ~cls ~gen ()).mean_response_ms)
          schedulers
      in
      Table.add_float_row table ~label:(string_of_int clients) row)
    clients_list;
  table

(* ------------------------------------------------------------------ *)
(* E2 — Figure 2: last-lock hand-off                                   *)

let figure2 ?(clients_list = [ 2; 4; 8; 16 ]) () =
  let wl = Detmt_workload.Tail_compute.default in
  let cls = Detmt_workload.Tail_compute.cls wl in
  let gen = Detmt_workload.Tail_compute.gen wl in
  let schedulers = [ "mat"; "mat-ll"; "pmat" ] in
  let table =
    Table.create
      ~title:
        "Figure 2: locking pattern after the last lock — mean response (ms); \
         1ms critical section, 20ms tail computation, shared mutex"
      ~columns:("clients" :: schedulers)
  in
  List.iter
    (fun clients ->
      let row =
        List.map
          (fun scheduler ->
            (run_workload ~scheduler ~clients ~cls ~gen ()).mean_response_ms)
          schedulers
      in
      Table.add_float_row table ~label:(string_of_int clients) row)
    clients_list;
  table

(* ------------------------------------------------------------------ *)
(* E3 — Figure 3: non-conflicting mutexes                              *)

let figure3 ?(clients_list = [ 2; 4; 8; 16 ]) () =
  let wl = Detmt_workload.Disjoint.default in
  let cls = Detmt_workload.Disjoint.cls wl in
  let gen = Detmt_workload.Disjoint.gen in
  let schedulers = [ "seq"; "mat"; "mat-ll"; "pmat" ] in
  let table =
    Table.create
      ~title:
        "Figure 3: non-conflicting mutexes — mean response (ms); each client \
         locks a private mutex (5ms critical section, 2ms tail)"
      ~columns:("clients" :: schedulers)
  in
  List.iter
    (fun clients ->
      let row =
        List.map
          (fun scheduler ->
            (run_workload ~scheduler ~clients ~cls ~gen ()).mean_response_ms)
          schedulers
      in
      Table.add_float_row table ~label:(string_of_int clients) row)
    clients_list;
  table

(* Render a small run's per-thread schedule — the visual form of the
   paper's Figures 2 and 3. *)
let timeline ?(scheduler = "mat") ?(workload = `Tail) ?(clients = 3)
    ?(requests = 2) () =
  let cls, gen =
    match workload with
    | `Tail ->
      let wl =
        { Detmt_workload.Tail_compute.default with
          Detmt_workload.Tail_compute.tail_ms = 10.0 }
      in
      (Detmt_workload.Tail_compute.cls wl, Detmt_workload.Tail_compute.gen wl)
    | `Disjoint ->
      ( Detmt_workload.Disjoint.cls Detmt_workload.Disjoint.default,
        Detmt_workload.Disjoint.gen )
  in
  let engine = Engine.create () in
  let system =
    Active.create ~engine ~cls
      ~params:{ Active.default_params with scheduler } ()
  in
  Client.run_clients ~engine ~system ~clients ~requests_per_client:requests
    ~gen ();
  match Active.replicas system with
  | r :: _ ->
    Detmt_sim.Timeline.of_trace
      (Detmt_sim.Trace.timed_events (Detmt_runtime.Replica.trace r))
  | [] -> Detmt_sim.Timeline.of_trace []

(* ------------------------------------------------------------------ *)
(* E4 — Figure 4: the transformation example                           *)

let figure4 () =
  let open Detmt_lang in
  let source =
    let open Builder in
    cls ~cname:"Figure4" ~mutex_fields:[ ("myo", 7) ] ~state_fields:[ "st" ]
      [ meth "foo" ~params:1
          [ if_
              (field_eq_arg "myo" 0)
              [ sync (arg 0) [ state_incr "st" 1 ] ]
              [ sync (field "myo") [ state_incr "st" 1 ] ];
          ];
      ]
  in
  let transformed, _summary = Detmt_transform.Transform.predictive source in
  Format.asprintf
    "--- source ---------------------------------------------------@.%a@.@.--- \
     after code analysis and injection ----------------------------@.%a@."
    Pretty.method_def
    (Class_def.find_method_exn source "foo")
    Pretty.method_def
    (Class_def.find_method_exn transformed "foo")

(* ------------------------------------------------------------------ *)
(* E5 — WAN: LSA's broadcast dependence                                *)

let wan
    ?(latencies_ms = [ 0.1; 0.5; 2.0; 8.0; 20.0; 50.0; 100.0; 200.0 ])
    ?(clients = 8) () =
  let wl = Detmt_workload.Figure1.default in
  let cls = Detmt_workload.Figure1.cls wl in
  let gen = Detmt_workload.Figure1.gen wl in
  let schedulers = [ "lsa"; "mat" ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "WAN sweep (%d clients): mean response (ms) and broadcasts vs \
            one-way network latency"
           clients)
      ~columns:
        [ "latency_ms"; "lsa"; "mat"; "lsa_broadcasts"; "mat_broadcasts" ]
  in
  List.iter
    (fun latency ->
      let results =
        List.map
          (fun scheduler ->
            let params =
              { Active.default_params with net_latency_ms = latency }
            in
            run_workload ~params ~scheduler ~clients ~cls ~gen ())
          schedulers
      in
      match results with
      | [ lsa; mat ] ->
        Table.add_row table
          [ Printf.sprintf "%.1f" latency;
            Printf.sprintf "%.2f" lsa.mean_response_ms;
            Printf.sprintf "%.2f" mat.mean_response_ms;
            string_of_int lsa.broadcasts;
            string_of_int mat.broadcasts ]
      | _ -> assert false)
    latencies_ms;
  table

(* ------------------------------------------------------------------ *)
(* E6 — leader failover                                                *)

type failover_row = {
  f_scheduler : string;
  f_takeover_ms : float;
  f_replies_after : int;
  f_consistent_after : bool;
}

let failover_run ~scheduler =
  (* The disjoint workload has no nested invocations, so killing replica 0
     does not disturb the external-call invoker role: any take-over delay is
     purely the scheduler's.  LSA stalls until the failure is detected and a
     new leader decides; the symmetric algorithms continue seamlessly. *)
  let wl = Detmt_workload.Disjoint.default in
  let cls = Detmt_workload.Disjoint.cls wl in
  let gen = Detmt_workload.Disjoint.gen in
  let engine = Engine.create () in
  let system =
    Active.create ~engine ~cls ~params:{ Active.default_params with scheduler }
      ()
  in
  let kill_at = 150.0 in
  (* Replica 0 is the initial leader for LSA. *)
  Failover.kill_and_measure ~system ~replica:0 ~at:kill_at;
  Client.run_clients ~engine ~system ~clients:8 ~requests_per_client:30 ~gen
    ~until_ms:60_000.0 ();
  let a = Failover.analyze ~system ~kill_at in
  let report = Consistency.check (Active.live_replicas system) in
  { f_scheduler = scheduler; f_takeover_ms = a.takeover_ms;
    f_replies_after = a.replies_after;
    f_consistent_after =
      report.Consistency.states_agree
      && report.Consistency.acquisitions_agree }

let failover ?(schedulers = [ "lsa"; "mat"; "sat" ]) () =
  let table =
    Table.create
      ~title:
        "Leader failover at t=150ms (detection timeout 50ms): extra reply \
         gap caused by the failure"
      ~columns:[ "scheduler"; "takeover_ms"; "replies_after"; "consistent" ]
  in
  List.iter
    (fun scheduler ->
      let r = failover_run ~scheduler in
      Table.add_row table
        [ r.f_scheduler;
          Printf.sprintf "%.2f" r.f_takeover_ms;
          string_of_int r.f_replies_after;
          string_of_bool r.f_consistent_after ])
    schedulers;
  table

(* ------------------------------------------------------------------ *)
(* E7 — PDS batching                                                   *)

let pds_batch ?(batches = [ 1; 2; 4; 8; 16 ]) ?(clients_list = [ 2; 8; 32 ])
    () =
  let wl = Detmt_workload.Figure1.default in
  let cls = Detmt_workload.Figure1.cls wl in
  let gen = Detmt_workload.Figure1.gen wl in
  let table =
    Table.create
      ~title:
        "PDS batch-size sweep: mean response (ms) / dummy broadcasts, per \
         #clients"
      ~columns:
        ("batch"
        :: List.map (fun c -> Printf.sprintf "%dc resp" c) clients_list
        @ List.map (fun c -> Printf.sprintf "%dc dummies" c) clients_list)
  in
  List.iter
    (fun batch ->
      let results =
        List.map
          (fun clients ->
            let config =
              { Detmt_runtime.Config.default with pds_batch = batch }
            in
            let params = { Active.default_params with config } in
            run_workload ~params ~scheduler:"pds" ~clients ~cls ~gen ())
          clients_list
      in
      let dummy_count r =
        match List.assoc_opt "pds-dummy" r.message_kinds with
        | Some n -> n
        | None -> 0
      in
      Table.add_row table
        (string_of_int batch
        :: List.map (fun r -> Printf.sprintf "%.2f" r.mean_response_ms)
             results
        @ List.map (fun r -> string_of_int (dummy_count r)) results))
    batches;
  table

(* ------------------------------------------------------------------ *)
(* E8 — bookkeeping overhead crossover                                 *)

let overhead
    ?(bookkeeping_ms = [ 0.0; 0.01; 0.1; 0.5; 1.0; 2.0; 5.0; 10.0 ])
    ?(clients = 8) () =
  (* Two extremes: disjoint locks, where prediction buys full concurrency
     (a large gain the bookkeeping cost merely erodes), and a single shared
     mutex, where prediction cannot reorder anything — there the injected
     calls are pure overhead and PMAT crosses below MAT.  This is the
     section 5 question: "at which point performance decreases again due to
     runtime overhead". *)
  let disjoint = Detmt_workload.Disjoint.default in
  let contended =
    { Detmt_workload.Tail_compute.lock_ms = 5.0; tail_ms = 2.0;
      shared_mutex = true }
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Bookkeeping-overhead sweep (%d clients): mean response (ms); \
            disjoint locks (prediction pays) vs one shared mutex \
            (prediction cannot help)"
           clients)
      ~columns:
        [ "bookkeeping_ms"; "mat/disj"; "pmat/disj"; "mat/shared";
          "pmat/shared"; "mat/fig1"; "pmat/fig1" ]
  in
  List.iter
    (fun bk ->
      let run scheduler ~cls ~gen =
        let config =
          { Detmt_runtime.Config.default with bookkeeping_overhead_ms = bk }
        in
        let params = { Active.default_params with config } in
        (run_workload ~params ~scheduler ~clients ~cls ~gen ())
          .mean_response_ms
      in
      let d_cls = Detmt_workload.Disjoint.cls disjoint in
      let d_gen = Detmt_workload.Disjoint.gen in
      let c_cls = Detmt_workload.Tail_compute.cls contended in
      let c_gen = Detmt_workload.Tail_compute.gen contended in
      let f_wl = Detmt_workload.Figure1.default in
      let f_cls = Detmt_workload.Figure1.cls f_wl in
      let f_gen = Detmt_workload.Figure1.gen f_wl in
      Table.add_row table
        [ Printf.sprintf "%.3f" bk;
          Printf.sprintf "%.2f" (run "mat" ~cls:d_cls ~gen:d_gen);
          Printf.sprintf "%.2f" (run "pmat" ~cls:d_cls ~gen:d_gen);
          Printf.sprintf "%.2f" (run "mat" ~cls:c_cls ~gen:c_gen);
          Printf.sprintf "%.2f" (run "pmat" ~cls:c_cls ~gen:c_gen);
          Printf.sprintf "%.2f" (run "mat" ~cls:f_cls ~gen:f_gen);
          Printf.sprintf "%.2f" (run "pmat" ~cls:f_cls ~gen:f_gen) ])
    bookkeeping_ms;
  table

(* ------------------------------------------------------------------ *)
(* E13 — open-loop saturation: throughput limits per scheduler          *)

let saturation ?(rates = [ 10.0; 25.0; 50.0; 100.0; 200.0 ])
    ?(schedulers = [ "seq"; "sat"; "mat"; "lsa"; "pmat" ]) ?(requests = 150)
    () =
  let wl = Detmt_workload.Figure1.default in
  let cls = Detmt_workload.Figure1.cls wl in
  let gen = Detmt_workload.Figure1.gen wl in
  let table =
    Table.create
      ~title:
        "Open-loop saturation (Poisson arrivals, Figure-1 workload): mean \
         response (ms) vs offered load; '-' = backlog still growing at the \
         measurement horizon"
      ~columns:("req/s" :: schedulers)
  in
  List.iter
    (fun rate ->
      let row =
        List.map
          (fun scheduler ->
            let engine = Engine.create () in
            let system =
              Active.create ~engine ~cls
                ~params:{ Active.default_params with scheduler }
                ()
            in
            let horizon =
              (* generous: 10x the time the load would need at capacity *)
              10.0 *. (float_of_int requests *. 1000.0 /. rate)
            in
            Client.run_open_loop ~engine ~system ~rate_per_s:rate ~requests
              ~gen ~until_ms:horizon ();
            if Active.replies_received system < requests then "-"
            else
              Printf.sprintf "%.1f"
                (Summary.mean (Active.response_times system)))
          schedulers
      in
      Table.add_row table (Printf.sprintf "%.0f" rate :: row))
    rates;
  table

(* ------------------------------------------------------------------ *)
(* E11 — the section-5 analytic model vs the simulator                 *)

let model ?(clients_list = [ 4; 8; 16; 32 ])
    ?(schedulers = [ "seq"; "sat"; "mat"; "lsa" ]) () =
  (* Use the compute-heavy Figure-1 variant: the model's MAT/SAT distinction
     is the pre-lock computation, which the paper's base workload barely
     has. *)
  let wl = Detmt_workload.Figure1.compute_heavy in
  let cls = Detmt_workload.Figure1.cls wl in
  let gen = Detmt_workload.Figure1.gen wl in
  let table =
    Table.create
      ~title:
        "Analytic model vs simulation (compute-heavy Figure-1 workload): \
         mean response (ms), model / measured / error"
      ~columns:
        ("clients"
        :: List.concat_map
             (fun s -> [ s ^ " model"; s ^ " sim"; s ^ " err%" ])
             schedulers)
  in
  List.iter
    (fun clients ->
      let cells =
        List.concat_map
          (fun scheduler ->
            let w = Model.of_figure1 ~clients wl in
            let predicted = Model.predict_response_ms w ~scheduler in
            let measured =
              (run_workload ~scheduler ~clients ~cls ~gen ())
                .mean_response_ms
            in
            let err = 100.0 *. (predicted -. measured) /. measured in
            [ Printf.sprintf "%.1f" predicted;
              Printf.sprintf "%.1f" measured;
              Printf.sprintf "%+.0f" err ])
          schedulers
      in
      Table.add_row table (string_of_int clients :: cells))
    clients_list;
  table

(* ------------------------------------------------------------------ *)
(* E12 — static interference analysis (section 5)                      *)

let interference () =
  (* The bank from examples/bank.ml in miniature: methods over disjoint
     account groups never interfere; a method on a request-supplied mutex
     interferes with everything. *)
  let open Detmt_lang.Builder in
  let cls =
    Detmt_lang.Class_def.make ~cname:"Audit"
      ~mutex_fields:[ ("ledger", 100); ("journal", 101) ]
      ~state_fields:[ "st" ]
      [ meth "post_ledger" [ sync (field "ledger") [ state_incr "st" 1 ] ];
        meth "post_journal" [ sync (field "journal") [ state_incr "st" 1 ] ];
        meth "audit_self" [ sync this [ state_incr "st" 1 ] ];
        meth "touch_any" ~params:1 [ sync (arg 0) [ state_incr "st" 1 ] ];
      ]
  in
  Detmt_analysis.Interference.analyse cls

(* ------------------------------------------------------------------ *)
(* E9 — producer/consumer                                              *)

let prodcons ?(schedulers = [ "sat"; "lsa"; "pds"; "mat"; "mat-ll"; "pmat" ])
    ?(clients = 8) () =
  let wl = Detmt_workload.Prodcons.default in
  let cls = Detmt_workload.Prodcons.cls wl in
  let gen = Detmt_workload.Prodcons.gen in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Producer/consumer over condition variables (%d clients; SEQ \
            excluded: it deadlocks, see section 1)"
           clients)
      ~columns:[ "scheduler"; "mean_ms"; "p95_ms"; "replies"; "consistent" ]
  in
  List.iter
    (fun scheduler ->
      let r = run_workload ~scheduler ~clients ~cls ~gen () in
      Table.add_row table
        [ scheduler;
          Printf.sprintf "%.2f" r.mean_response_ms;
          Printf.sprintf "%.2f" r.p95_response_ms;
          string_of_int r.replies;
          string_of_bool r.consistent ])
    schedulers;
  table

(* ------------------------------------------------------------------ *)
(* E14 — sharded multi-group replication: throughput scaling           *)

(* Host-side cost columns for the bench JSON: wall-clock milliseconds and
   GC-allocated words around one run.  These are host-machine measurements,
   never virtual-time inputs, so recording them cannot perturb the run. *)
let costed f =
  let minor0 = Gc.minor_words () in
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  let s1 = Gc.quick_stat () in
  ( r,
    (t1 -. t0) *. 1000.0,
    Gc.minor_words () -. minor0,
    s1.Gc.major_words -. s0.Gc.major_words )

let finite v = if Float.is_nan v then 0.0 else v

type shard_row = {
  s_shards : int;
  s_clients : int;
  s_cross_ratio : float;
  s_expected : int;
  s_replies : int;
  s_fast_path : int;
  s_cross_shard : int;
  s_mean_response_ms : float;
  s_p95_response_ms : float;
  s_throughput_per_s : float;
  s_broadcasts : int;
  s_wire_batches : int;
  s_consistent : bool;
  s_fingerprint : int64;
  s_duration_ms : float;
  s_wall_ms : float;
  s_minor_words : float;
  s_major_words : float;
  s_series_points : int;
  s_peak_pending : float;
}

(* [obs] defaults to a fresh enabled recorder (not [disabled]): the bench
   JSON carries the windowed-series columns, and the recorder's read-only
   contract (tested against every scheduler) keeps the run bit-identical
   either way. *)
let run_shard ?(seed = 42L) ?(scheduler = "mat") ?(workers = 1)
    ?(requests_per_client = 4) ?batching ?obs
    ?(workload = Detmt_workload.Sharded.default) ~shards ~clients () =
  let obs =
    match obs with Some o -> o | None -> Detmt_obs.Recorder.create ()
  in
  let cls = Detmt_workload.Sharded.cls workload in
  let gen = Detmt_workload.Sharded.gen workload in
  let engine = Engine.create () in
  let base =
    { Active.default_params with Active.scheduler; workers; batching }
  in
  let system =
    Shard.create ~obs ~engine ~cls ~params:{ Shard.shards; base } ()
  in
  let (), wall_ms, minor_words, major_words =
    costed (fun () ->
        ignore
          (Shard.run_clients_stats system ~clients ~requests_per_client ~gen
             ~seed ()))
  in
  let ts = Detmt_obs.Recorder.timeseries obs in
  let times = Shard.response_times system in
  let duration_ms = Engine.now engine in
  let replies = Shard.replies_received system in
  { s_shards = shards; s_clients = clients;
    s_cross_ratio = workload.Detmt_workload.Sharded.cross_ratio;
    s_expected = clients * requests_per_client;
    s_replies = replies;
    s_fast_path = Shard.fast_path_requests system;
    s_cross_shard = Shard.cross_shard_requests system;
    s_mean_response_ms = Summary.mean times;
    s_p95_response_ms = Summary.quantile times 0.95;
    s_throughput_per_s =
      (if duration_ms > 0.0 then 1000.0 *. float_of_int replies /. duration_ms
       else 0.0);
    s_broadcasts = Shard.broadcasts system;
    s_wire_batches = Shard.wire_batches system;
    s_consistent = Shard.consistent system;
    s_fingerprint = Shard.fingerprint system;
    s_duration_ms = duration_ms;
    s_wall_ms = wall_ms;
    s_minor_words = minor_words;
    s_major_words = major_words;
    s_series_points = Detmt_obs.Timeseries.point_count ts;
    s_peak_pending = finite (Detmt_obs.Timeseries.peak ts "engine.pending") }

let shard_sweep ?seed ?(shards_list = [ 1; 2; 4; 8 ])
    ?(clients_list = [ 64; 256; 1024 ]) ?(cross_ratios = [ 0.0; 0.1 ])
    ?(scheduler = "mat") ?(workers = 1) ?(requests_per_client = 4) ?batching
    () =
  List.concat_map
    (fun clients ->
      List.concat_map
        (fun cross_ratio ->
          let workload =
            { Detmt_workload.Sharded.default with
              Detmt_workload.Sharded.cross_ratio }
          in
          List.map
            (fun shards ->
              run_shard ?seed ~scheduler ~workers ~requests_per_client
                ?batching ~workload ~shards ~clients ())
            shards_list)
        cross_ratios)
    clients_list

(* Speedup is reported against the 1-shard run of the same (clients,
   cross_ratio) cell — the sharding gain net of everything else. *)
let shard_speedup rows r =
  List.find_opt
    (fun b ->
      b.s_shards = 1 && b.s_clients = r.s_clients
      && b.s_cross_ratio = r.s_cross_ratio)
    rows
  |> Option.map (fun b ->
         if b.s_throughput_per_s > 0.0 then
           r.s_throughput_per_s /. b.s_throughput_per_s
         else 0.0)

let shard_table rows =
  let t =
    Table.create
      ~title:
        "E14: sharded multi-group replication — throughput vs shard count \
         (speedup relative to the 1-shard run of the same row group)"
      ~columns:
        [ "shards"; "clients"; "cross"; "replies"; "fast/cross";
          "mean_ms"; "p95_ms"; "req/s"; "speedup"; "consistent" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ string_of_int r.s_shards;
          string_of_int r.s_clients;
          Printf.sprintf "%.0f%%" (100.0 *. r.s_cross_ratio);
          Printf.sprintf "%d/%d" r.s_replies r.s_expected;
          Printf.sprintf "%d/%d" r.s_fast_path r.s_cross_shard;
          Printf.sprintf "%.2f" r.s_mean_response_ms;
          Printf.sprintf "%.2f" r.s_p95_response_ms;
          Printf.sprintf "%.0f" r.s_throughput_per_s;
          (match shard_speedup rows r with
          | Some x -> Printf.sprintf "%.2fx" x
          | None -> "-");
          string_of_bool r.s_consistent ])
    rows;
  t

(* schema_version history: v2 added the wall_ms / minor_words / major_words /
   series_points / peak_pending cost columns to every row; v3 is the engine
   core suite release (events_per_s / words_per_event in BENCH_engine.json)
   — all bench producers version in lockstep. *)
let shard_json rows =
  let module Json = Detmt_obs.Json in
  Json.Obj
    [ ("schema_version", Json.Int 3);
      ("experiment", Json.String "shard");
      ("workload", Json.String "sharded");
      ("rows",
       Json.List
         (List.map
            (fun r ->
              Json.Obj
                [ ("shards", Json.Int r.s_shards);
                  ("clients", Json.Int r.s_clients);
                  ("cross_ratio", Json.Float r.s_cross_ratio);
                  ("expected", Json.Int r.s_expected);
                  ("replies", Json.Int r.s_replies);
                  ("fast_path", Json.Int r.s_fast_path);
                  ("cross_shard", Json.Int r.s_cross_shard);
                  ("mean_response_ms", Json.Float r.s_mean_response_ms);
                  ("p95_response_ms", Json.Float r.s_p95_response_ms);
                  ("throughput_per_s", Json.Float r.s_throughput_per_s);
                  ("speedup_vs_1shard",
                   match shard_speedup rows r with
                   | Some x -> Json.Float x
                   | None -> Json.Null);
                  ("broadcasts", Json.Int r.s_broadcasts);
                  ("wire_batches", Json.Int r.s_wire_batches);
                  ("consistent", Json.Bool r.s_consistent);
                  ("fingerprint", Json.String (Printf.sprintf "%Lx" r.s_fingerprint));
                  ("duration_ms", Json.Float r.s_duration_ms);
                  ("wall_ms", Json.Float r.s_wall_ms);
                  ("minor_words", Json.Float r.s_minor_words);
                  ("major_words", Json.Float r.s_major_words);
                  ("series_points", Json.Int r.s_series_points);
                  ("peak_pending", Json.Float r.s_peak_pending) ])
            rows)) ]

(* ------------------------------------------------------------------ *)
(* E16 — elastic reconfiguration: autoscaling vs static shard counts   *)

type elastic_mode = Static of int | Autoscale of Reconfig.policy

let elastic_mode_label = function
  | Static n -> Printf.sprintf "static-%d" n
  | Autoscale _ -> "autoscale"

type elastic_row = {
  e_mode : string;
  e_clients : int;
  e_expected : int;
  e_replies : int;
  e_groups_final : int;
  e_epoch : int;
  e_splits : int;
  e_merges : int;
  e_swaps : int;
  e_held : int;
  e_cross_group : int;
  e_mean_response_ms : float;
  e_p95_response_ms : float;
  e_throughput_per_s : float;
  e_states_agree : bool;
  e_epochs_agree : bool;
  e_fingerprint : int64;
  e_duration_ms : float;
  e_wall_ms : float;
  e_minor_words : float;
  e_major_words : float;
  e_series_points : int;
  e_peak_pending : float;
}

(* One run of the Zipf-hotspot workload over the elastic substrate.  Static
   modes fix the group count for the whole run (epoch 0 of an N-group
   Reconfig is byte-identical to the N-shard {!Shard} system); autoscale
   starts at one group and lets the controller split, merge and (when the
   policy allows) hot-swap against the drifting hotspot. *)
let run_elastic ?(seed = 42L) ?(scheduler = "mat") ?(requests_per_client = 4)
    ?obs ?(workload = Detmt_workload.Hotspot.default) ~mode ~clients () =
  let obs =
    match obs with Some o -> o | None -> Detmt_obs.Recorder.create ()
  in
  let cls = Detmt_workload.Hotspot.cls workload in
  let gen = Detmt_workload.Hotspot.gen workload in
  let engine = Engine.create () in
  let base = { Active.default_params with Active.scheduler } in
  let initial_groups = match mode with Static n -> n | Autoscale _ -> 1 in
  let system =
    Reconfig.create ~obs ~engine ~cls
      ~params:{ Reconfig.default_params with Reconfig.initial_groups; base }
      ()
  in
  (match mode with
  | Autoscale policy -> Reconfig.set_autoscale system policy
  | Static _ -> ());
  let (), wall_ms, minor_words, major_words =
    costed (fun () ->
        ignore
          (Reconfig.run_clients_stats system ~clients ~requests_per_client
             ~gen ~seed ()))
  in
  let ts = Detmt_obs.Recorder.timeseries obs in
  let times = Reconfig.response_times system in
  let duration_ms = Engine.now engine in
  let replies = Reconfig.replies_received system in
  { e_mode = elastic_mode_label mode;
    e_clients = clients;
    e_expected = clients * requests_per_client;
    e_replies = replies;
    e_groups_final = Reconfig.group_count system;
    e_epoch = Reconfig.epoch system;
    e_splits = Reconfig.splits system;
    e_merges = Reconfig.merges system;
    e_swaps = Reconfig.swaps system;
    e_held = Reconfig.held_requests system;
    e_cross_group = Reconfig.cross_group_requests system;
    e_mean_response_ms = Summary.mean times;
    e_p95_response_ms = Summary.quantile times 0.95;
    e_throughput_per_s =
      (if duration_ms > 0.0 then 1000.0 *. float_of_int replies /. duration_ms
       else 0.0);
    e_states_agree = Reconfig.states_agree system;
    e_epochs_agree = Reconfig.epochs_agree system;
    e_fingerprint = Reconfig.fingerprint system;
    e_duration_ms = duration_ms;
    e_wall_ms = wall_ms;
    e_minor_words = minor_words;
    e_major_words = major_words;
    e_series_points = Detmt_obs.Timeseries.point_count ts;
    e_peak_pending = finite (Detmt_obs.Timeseries.peak ts "engine.pending") }

(* The grid's controller setting: tick fast, split eagerly, never merge
   (mid-run merges only pay off on workloads that go cold, and this one
   never does), and grow past the static grid's ceiling — the statics stop
   at 8 groups, the autoscaler may reach 16.  The split drains are a fixed
   up-front cost, so the sweep runs long enough (16 requests per client)
   to amortise them; the hotspot drifts twice over those 16 requests. *)
let elastic_bench_policy =
  { Reconfig.default_policy with
    Reconfig.interval_ms = 0.5; split_above = 4; merge_below = -1;
    max_live = 16 }

let elastic_bench_workload =
  { Detmt_workload.Hotspot.default with Detmt_workload.Hotspot.drift_every = 8 }

let elastic_sweep ?seed ?(static_shards = [ 1; 2; 4; 8 ])
    ?(clients_list = [ 256; 1024 ]) ?(scheduler = "mat")
    ?(requests_per_client = 16) ?policy
    ?(workload = elastic_bench_workload) () =
  let policy = Option.value policy ~default:elastic_bench_policy in
  List.concat_map
    (fun clients ->
      List.map
        (fun n ->
          run_elastic ?seed ~workload ~scheduler ~requests_per_client
            ~mode:(Static n) ~clients ())
        static_shards
      @ [ run_elastic ?seed ~workload ~scheduler ~requests_per_client
            ~mode:(Autoscale policy) ~clients () ])
    clients_list

(* The autoscaler's p95 against the best static configuration of the same
   client count — the headline the elastic experiment argues. *)
let elastic_vs_best_static rows r =
  if r.e_mode <> "autoscale" then None
  else
    let statics =
      List.filter
        (fun b -> b.e_clients = r.e_clients && b.e_mode <> "autoscale")
        rows
    in
    match statics with
    | [] -> None
    | _ ->
      Some
        (List.fold_left
           (fun acc b -> min acc b.e_p95_response_ms)
           Float.infinity statics)

let elastic_table rows =
  let t =
    Table.create
      ~title:
        "E16: elastic reconfiguration — autoscaling vs static shard counts \
         on the drifting Zipf-hotspot workload"
      ~columns:
        [ "mode"; "clients"; "replies"; "groups"; "epochs";
          "split/merge/swap"; "held"; "mean_ms"; "p95_ms"; "req/s";
          "vs best static"; "agree" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.e_mode;
          string_of_int r.e_clients;
          Printf.sprintf "%d/%d" r.e_replies r.e_expected;
          string_of_int r.e_groups_final;
          string_of_int r.e_epoch;
          Printf.sprintf "%d/%d/%d" r.e_splits r.e_merges r.e_swaps;
          string_of_int r.e_held;
          Printf.sprintf "%.2f" r.e_mean_response_ms;
          Printf.sprintf "%.2f" r.e_p95_response_ms;
          Printf.sprintf "%.0f" r.e_throughput_per_s;
          (match elastic_vs_best_static rows r with
          | Some best when best > 0.0 ->
            Printf.sprintf "%.2fx" (best /. r.e_p95_response_ms)
          | _ -> "-");
          string_of_bool (r.e_states_agree && r.e_epochs_agree) ])
    rows;
  t

let elastic_json rows =
  let module Json = Detmt_obs.Json in
  Json.Obj
    [ ("schema_version", Json.Int 3);
      ("experiment", Json.String "elastic");
      ("workload", Json.String "hotspot");
      ("rows",
       Json.List
         (List.map
            (fun r ->
              Json.Obj
                [ ("mode", Json.String r.e_mode);
                  ("clients", Json.Int r.e_clients);
                  ("expected", Json.Int r.e_expected);
                  ("replies", Json.Int r.e_replies);
                  ("groups_final", Json.Int r.e_groups_final);
                  ("epoch", Json.Int r.e_epoch);
                  ("splits", Json.Int r.e_splits);
                  ("merges", Json.Int r.e_merges);
                  ("swaps", Json.Int r.e_swaps);
                  ("held", Json.Int r.e_held);
                  ("cross_group", Json.Int r.e_cross_group);
                  ("mean_response_ms", Json.Float r.e_mean_response_ms);
                  ("p95_response_ms", Json.Float r.e_p95_response_ms);
                  ("throughput_per_s", Json.Float r.e_throughput_per_s);
                  ("p95_speedup_vs_best_static",
                   match elastic_vs_best_static rows r with
                   | Some best when r.e_p95_response_ms > 0.0 ->
                     Json.Float (best /. r.e_p95_response_ms)
                   | _ -> Json.Null);
                  ("states_agree", Json.Bool r.e_states_agree);
                  ("epochs_agree", Json.Bool r.e_epochs_agree);
                  ("fingerprint",
                   Json.String (Printf.sprintf "%Lx" r.e_fingerprint));
                  ("duration_ms", Json.Float r.e_duration_ms);
                  ("wall_ms", Json.Float r.e_wall_ms);
                  ("minor_words", Json.Float r.e_minor_words);
                  ("major_words", Json.Float r.e_major_words);
                  ("series_points", Json.Int r.e_series_points);
                  ("peak_pending", Json.Float r.e_peak_pending) ])
            rows)) ]

(* ------------------------------------------------------------------ *)
(* E10 — determinism matrix                                            *)

let determinism
    ?(schedulers = [ "seq"; "sat"; "lsa"; "pds"; "mat"; "mat-ll"; "pmat";
                     "freefall" ]) () =
  (* High contention (one shared mutex) so that nondeterminism has room to
     show: freefall must diverge here; LSA agrees on state and per-mutex
     acquisition order but not on full traces (followers replay the
     leader's decisions with a different event interleaving). *)
  let wl = Detmt_workload.Tail_compute.default in
  let cls = Detmt_workload.Tail_compute.cls wl in
  let gen = Detmt_workload.Tail_compute.gen wl in
  let table =
    Table.create
      ~title:
        "Determinism matrix (shared-mutex workload, 8 clients): do the \
         three replicas agree?"
      ~columns:[ "scheduler"; "state"; "acquisitions"; "traces" ]
  in
  List.iter
    (fun scheduler ->
      let engine = Engine.create () in
      let system =
        Active.create ~engine ~cls
          ~params:{ Active.default_params with scheduler } ()
      in
      Client.run_clients ~engine ~system ~clients:8 ~requests_per_client:5
        ~gen ();
      let r = Consistency.check (Active.live_replicas system) in
      let mark b = if b then "agree" else "DIVERGE" in
      Table.add_row table
        [ scheduler; mark r.states_agree; mark r.acquisitions_agree;
          mark r.traces_agree ])
    schedulers;
  table

(* ------------------------------------------------------------------ *)
(* E19 — conflict-graph parallel scheduling: cgs/pcgs vs pMAT          *)

type parallel_row = {
  pl_scheduler : string;
  pl_workers : int;
  pl_clients : int;
  pl_expected : int;
  pl_replies : int;
  pl_mean_response_ms : float;
  pl_p95_response_ms : float;
  pl_throughput_per_s : float;
  pl_consistent : bool;
  pl_duration_ms : float;
}

let parallel_workload =
  { Detmt_workload.Figure1.default with
    Detmt_workload.Figure1.n_mutexes = 4096; p_nested = 0.0 }

(* One grid point, shared by the E19 and E20 pools. *)
let pl_one ~seed ~requests_per_client ~cls ~gen ~scheduler ~workers ~clients
    =
  let params = { Active.default_params with Active.workers } in
  let r =
    run_workload ~seed ~params ~requests_per_client ~scheduler ~clients ~cls
      ~gen ()
  in
  { pl_scheduler = scheduler; pl_workers = workers; pl_clients = clients;
    pl_expected = clients * requests_per_client;
    pl_replies = r.replies;
    pl_mean_response_ms = r.mean_response_ms;
    pl_p95_response_ms = r.p95_response_ms;
    pl_throughput_per_s = r.throughput_per_s;
    pl_consistent = r.consistent;
    pl_duration_ms = r.duration_ms }

let parallel_pool ?(seed = 42L) ?(clients_list = [ 64; 256; 1024 ])
    ?(workers_list = [ 1; 2; 4; 8 ]) ?(requests_per_client = 2)
    ?(workload = parallel_workload) () =
  let cls = Detmt_workload.Figure1.cls workload in
  let gen = Detmt_workload.Figure1.gen workload in
  let one = pl_one ~seed ~requests_per_client ~cls ~gen in
  List.concat_map
    (fun clients ->
      one ~scheduler:"pmat" ~workers:1 ~clients
      :: List.concat_map
           (fun workers ->
             [ one ~scheduler:"cgs" ~workers ~clients;
               one ~scheduler:"pcgs" ~workers ~clients ])
           workers_list)
    clients_list

let pl_table ~title rows =
  let t =
    Table.create ~title
      ~columns:
        [ "scheduler"; "workers"; "clients"; "replies"; "mean_ms"; "p95_ms";
          "req/s"; "consistent" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.pl_scheduler;
          string_of_int r.pl_workers;
          string_of_int r.pl_clients;
          Printf.sprintf "%d/%d" r.pl_replies r.pl_expected;
          Printf.sprintf "%.2f" r.pl_mean_response_ms;
          Printf.sprintf "%.2f" r.pl_p95_response_ms;
          Printf.sprintf "%.0f" r.pl_throughput_per_s;
          string_of_bool r.pl_consistent ])
    rows;
  t

let parallel_table rows =
  pl_table
    ~title:
      "E19: conflict-graph scheduling on the low-conflict workload (4096 \
       mutexes, no nested calls)"
    rows

let pl_rows_json rows =
  let module Json = Detmt_obs.Json in
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [ ("scheduler", Json.String r.pl_scheduler);
             ("workers", Json.Int r.pl_workers);
             ("clients", Json.Int r.pl_clients);
             ("expected", Json.Int r.pl_expected);
             ("replies", Json.Int r.pl_replies);
             ("mean_response_ms", Json.Float r.pl_mean_response_ms);
             ("p95_response_ms", Json.Float r.pl_p95_response_ms);
             ("throughput_per_s", Json.Float r.pl_throughput_per_s);
             ("consistent", Json.Bool r.pl_consistent);
             ("duration_ms", Json.Float r.pl_duration_ms) ])
       rows)

let parallel_json rows =
  let module Json = Detmt_obs.Json in
  Json.Obj
    [ ("experiment", Json.String "parallel");
      ("workload", Json.String "figure1-low-conflict");
      ("rows", pl_rows_json rows) ]

(* ------------------------------------------------------------------ *)
(* E20 — deterministic workspaces: the misprediction safety net and    *)
(* the early-release (tail) gap                                        *)

(* E20a setting: every fourth request synchronises through a local the
   §4.3 analysis cannot resolve, so its conflict class is [Top] even
   though the dynamic closure is one of 64 mutexes.  Plain cgs serialises
   each opaque request against everything in flight; cgs+ws speculates it
   in a workspace off the critical path and merges at its slot barrier. *)
let workspace_workload =
  { Detmt_workload.Sharded.default with
    Detmt_workload.Sharded.cross_ratio = 0.0; opaque_ratio = 0.25 }

let workspace_pool ?(seed = 42L) ?(clients_list = [ 64; 256 ])
    ?(workers_list = [ 1; 4 ]) ?(requests_per_client = 2)
    ?(workload = workspace_workload) () =
  let cls = Detmt_workload.Sharded.cls workload in
  let gen = Detmt_workload.Sharded.gen workload in
  let one = pl_one ~seed ~requests_per_client ~cls ~gen in
  List.concat_map
    (fun clients ->
      List.concat_map
        (fun workers ->
          [ one ~scheduler:"cgs" ~workers ~clients;
            one ~scheduler:"cgs+ws" ~workers ~clients;
            one ~scheduler:"wss" ~workers ~clients ])
        workers_list)
    clients_list

let workspace_table rows =
  pl_table
    ~title:
      "E20a: workspace safety net on the misprediction workload (25% \
       opaque closures over 64 objects)"
    rows

let workspace_json rows =
  let module Json = Detmt_obs.Json in
  Json.Obj
    [ ("experiment", Json.String "workspace");
      ("workload", Json.String "sharded-opaque");
      ("opaque_ratio",
       Json.Float workspace_workload.Detmt_workload.Sharded.opaque_ratio);
      ("rows", pl_rows_json rows) ]

(* E20b setting: a 1 ms critical section on one shared mutex followed by a
   20 ms lock-free tail.  cgs keeps the whole static class blocked until
   the request terminates, so the tail serialises everything; pcgs's
   early release shrinks the blockset to [held ∪ future] after the last
   unlock, overlapping the tails — the Figure 2 gap, measured on the
   conflict-graph pair. *)
let tail_release_workload = Detmt_workload.Tail_compute.default

let tail_release_pool ?(seed = 42L) ?(clients_list = [ 16; 64 ])
    ?(workers_list = [ 1; 4 ]) ?(requests_per_client = 2)
    ?(workload = tail_release_workload) () =
  let cls = Detmt_workload.Tail_compute.cls workload in
  let gen = Detmt_workload.Tail_compute.gen workload in
  let one = pl_one ~seed ~requests_per_client ~cls ~gen in
  List.concat_map
    (fun clients ->
      List.concat_map
        (fun workers ->
          [ one ~scheduler:"cgs" ~workers ~clients;
            one ~scheduler:"pcgs" ~workers ~clients ])
        workers_list)
    clients_list

let tail_release_table rows =
  pl_table
    ~title:
      "E20b: early release on the shared-mutex tail workload (1 ms lock, \
       20 ms tail)"
    rows

let tail_release_json rows =
  let module Json = Detmt_obs.Json in
  Json.Obj
    [ ("experiment", Json.String "tail_release");
      ("workload", Json.String "tail-compute-shared");
      ("tail_ms",
       Json.Float tail_release_workload.Detmt_workload.Tail_compute.tail_ms);
      ("rows", pl_rows_json rows) ]
