(* detmt — deterministic multithreading strategies for replicated objects.

   Umbrella module: re-exports the public surface of every sub-library so
   applications can [open Detmt] (or use [Detmt.Mat], [Detmt.Active], ...)
   without naming the individual findlib sub-packages.

   Layering, bottom-up:
   - {!Engine}/{!Rng}/{!Cpu}/{!Trace}: deterministic discrete-event substrate
   - {!Ast}/{!Builder}/{!Class_def}: the mini object language
   - {!Callgraph}/{!Param_class}/{!Paths}/{!Predict}: static lock analysis
   - {!Transform}/{!Verify}: scheduler-call injection (the TPL substitute)
   - {!Metrics}/{!Recorder}/{!Audit}/{!Chrome}: the flight recorder
   - {!Totem}/{!Group}/{!Dedup}: total-order group communication
   - {!Replica}/{!Interp}/{!Mutex_table}/{!Condvar}: the replica runtime
   - {!Registry}/{!Bookkeeping} and the decision modules: the schedulers
   - {!Active}/{!Passive}/{!Client}/{!Consistency}/{!Failover}: replication
   - {!Schedule}/{!Explore}: bounded schedule-space model checking
   - {!Figure1}/{!Disjoint}/{!Tail_compute}/{!Prodcons}: paper workloads
   - {!Experiment}: one-call reproduction of every table and figure *)

(* simulation substrate *)
module Engine = Detmt_sim.Engine
module Rng = Detmt_sim.Rng
module Cpu = Detmt_sim.Cpu
module Trace = Detmt_sim.Trace
module Timeline = Detmt_sim.Timeline
module Pqueue = Detmt_sim.Pqueue

(* statistics *)
module Summary = Detmt_stats.Summary
module Histogram = Detmt_stats.Histogram
module Table = Detmt_stats.Table
module Series = Detmt_stats.Series

(* language *)
module Ast = Detmt_lang.Ast
module Builder = Detmt_lang.Builder
module Class_def = Detmt_lang.Class_def
module Pretty = Detmt_lang.Pretty
module Wellformed = Detmt_lang.Wellformed
module Dml = Detmt_lang.Dml

(* analysis *)
module Syncid = Detmt_analysis.Syncid
module Callgraph = Detmt_analysis.Callgraph
module Param_class = Detmt_analysis.Param_class
module Loops = Detmt_analysis.Loops
module Paths = Detmt_analysis.Paths
module Last_lock = Detmt_analysis.Last_lock
module Predict = Detmt_analysis.Predict
module Interference = Detmt_analysis.Interference

(* transformation *)
module Inline = Detmt_transform.Inline
module Inject = Detmt_transform.Inject
module Transform = Detmt_transform.Transform
module Verify = Detmt_transform.Verify

(* observability — the flight recorder (strictly read-only) and the
   continuous-telemetry layer (windowed series, hot-path profiler,
   critical-path analysis, OpenMetrics exposition).  [Timeseries] is the
   obs window store; the plain [Series] name stays with the stats chart
   module it has always meant. *)
module Json = Detmt_obs.Json
module Metrics = Detmt_obs.Metrics
module Hdr = Detmt_obs.Hdr
module Timeseries = Detmt_obs.Timeseries
module Profile = Detmt_obs.Profile
module Critical_path = Detmt_obs.Critical_path
module Openmetrics = Detmt_obs.Openmetrics
module Audit = Detmt_obs.Audit
module Recorder = Detmt_obs.Recorder
module Chrome = Detmt_obs.Chrome

(* group communication *)
module Message = Detmt_gcs.Message
module Totem = Detmt_gcs.Totem
module Dedup = Detmt_gcs.Dedup
module Group = Detmt_gcs.Group
module Faults = Detmt_gcs.Faults

(* runtime *)
module Request = Detmt_runtime.Request
module Mutex_table = Detmt_runtime.Mutex_table
module Condvar = Detmt_runtime.Condvar
module Runtime_config = Detmt_runtime.Config
module Object_state = Detmt_runtime.Object_state
module Op = Detmt_runtime.Op
module Interp = Detmt_runtime.Interp
module Sched_iface = Detmt_runtime.Sched_iface
module Replica = Detmt_runtime.Replica

(* schedulers: the shared substrate (two-module architecture) and the
   decision modules *)
module Bookkeeping = Detmt_sched.Bookkeeping
module Sched_config = Detmt_sched.Sched_config
module Substrate = Detmt_sched.Substrate
module Decision = Detmt_sched.Decision
module Candidate_index = Detmt_sched.Candidate_index
module Fqueue = Detmt_sched.Fqueue
module Waitq = Detmt_sched.Waitq
module Registry = Detmt_sched.Registry
module Seq_sched = Detmt_sched.Seq_sched
module Sat = Detmt_sched.Sat
module Lsa = Detmt_sched.Lsa
module Pds = Detmt_sched.Pds
module Mat = Detmt_sched.Mat
module Pmat = Detmt_sched.Pmat
module Freefall = Detmt_sched.Freefall
module Adaptive = Detmt_sched.Adaptive

(* replication *)
module Active = Detmt_replication.Active
module Shard = Detmt_replication.Shard
module Reconfig = Detmt_replication.Reconfig
module Passive = Detmt_replication.Passive
module Client = Detmt_replication.Client
module Consistency = Detmt_replication.Consistency
module Failover = Detmt_replication.Failover
module Chaos = Detmt_replication.Chaos

(* schedule-space exploration *)
module Schedule = Detmt_explore.Schedule
module Explore = Detmt_explore.Explore

(* workloads *)
module Figure1 = Detmt_workload.Figure1
module Sharded = Detmt_workload.Sharded
module Hotspot = Detmt_workload.Hotspot
module Disjoint = Detmt_workload.Disjoint
module Tail_compute = Detmt_workload.Tail_compute
module Prodcons = Detmt_workload.Prodcons

(* experiments *)
module Experiment = Experiment
module Model = Model
