(* A schedule is the explorer's unit of search and replay: a run
   configuration plus a list of perturbation entries, each naming one
   admissible deviation from the canonical execution.  Entries are keyed by
   stable identifiers (total-order sequence numbers, replica ids, tie-instant
   indices) rather than absolute times wherever possible, so a schedule
   survives shrinking: removing one entry does not invalidate the keys of
   the rest. *)

type entry =
  | Delay of { seq : int; dest : int; extra_ms : float }
      (* hold the delivery of total-order message [seq] to replica [dest]
         back by [extra_ms] beyond its planned arrival *)
  | Reorder of { at_index : int; pick : int }
      (* at the [at_index]-th multi-way simultaneity in the run, fire the
         [pick]-th eligible event instead of the canonical first *)
  | Flush of { after_seq : int }
      (* force the open delivery batch onto the wire right after message
         [after_seq] joins it (no-op without batching) *)
  | Crash of { replica : int; at_ms : float; recover_at_ms : float }
      (* kill [replica] at [at_ms]; recover it at [recover_at_ms]
         ([recover_at_ms <= at_ms] means no recovery) *)

type t = {
  scheduler : string;
  workload : string;
  seed : int;
  clients : int;
  requests : int;
  workers : int;
      (* simulated worker-pool width for the parallel scheduler family;
         1 everywhere else *)
  batching : Detmt_gcs.Totem.batching option;
  elastic : bool;
      (* run through Reconfig with the canonical split/merge cycle instead
         of a static Active group; crash entries name group-0 offsets *)
  entries : entry list;
}

let make ?(seed = 42) ?(clients = 4) ?(requests = 5) ?(workers = 1) ?batching
    ?(elastic = false) ~scheduler ~workload entries =
  { scheduler; workload; seed; clients; requests; workers; batching; elastic;
    entries }

let size t = List.length t.entries

let with_entries t entries = { t with entries }

(* ------------------------- text serialization ------------------------- *)

let entry_to_string = function
  | Delay { seq; dest; extra_ms } ->
    Printf.sprintf "delay seq=%d dest=%d extra_ms=%g" seq dest extra_ms
  | Reorder { at_index; pick } ->
    Printf.sprintf "reorder at=%d pick=%d" at_index pick
  | Flush { after_seq } -> Printf.sprintf "flush after_seq=%d" after_seq
  | Crash { replica; at_ms; recover_at_ms } ->
    Printf.sprintf "crash replica=%d at_ms=%g recover_at_ms=%g" replica at_ms
      recover_at_ms

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b "# detmt explore schedule v1\n";
  Buffer.add_string b (Printf.sprintf "scheduler %s\n" t.scheduler);
  Buffer.add_string b (Printf.sprintf "workload %s\n" t.workload);
  Buffer.add_string b (Printf.sprintf "seed %d\n" t.seed);
  Buffer.add_string b (Printf.sprintf "clients %d\n" t.clients);
  Buffer.add_string b (Printf.sprintf "requests %d\n" t.requests);
  (* emitted only when set, so pre-elastic witnesses round-trip unchanged *)
  if t.workers <> 1 then
    Buffer.add_string b (Printf.sprintf "workers %d\n" t.workers);
  if t.elastic then Buffer.add_string b "elastic true\n";
  Option.iter
    (fun { Detmt_gcs.Totem.max_batch; delay_ms } ->
      Buffer.add_string b
        (Printf.sprintf "batching max_batch=%d delay_ms=%g\n" max_batch
           delay_ms))
    t.batching;
  List.iter
    (fun e ->
      Buffer.add_string b (entry_to_string e);
      Buffer.add_char b '\n')
    t.entries;
  Buffer.contents b

let fail_line n line what =
  failwith (Printf.sprintf "Schedule.of_string: line %d: %s (%S)" n what line)

let of_string s =
  let scheduler = ref None
  and workload = ref None
  and seed = ref 42
  and clients = ref 4
  and requests = ref 5
  and workers = ref 1
  and batching = ref None
  and elastic = ref false
  and entries = ref [] in
  let parse_line n line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then ()
    else
      try
        match String.index_opt line ' ' with
        | None -> fail_line n line "missing argument"
        | Some i -> (
          let key = String.sub line 0 i in
          let rest = String.sub line (i + 1) (String.length line - i - 1) in
          match key with
          | "scheduler" -> scheduler := Some rest
          | "workload" -> workload := Some rest
          | "seed" -> seed := int_of_string rest
          | "clients" -> clients := int_of_string rest
          | "requests" -> requests := int_of_string rest
          | "workers" -> workers := int_of_string rest
          | "elastic" -> elastic := bool_of_string rest
          | "batching" ->
            Scanf.sscanf rest "max_batch=%d delay_ms=%f" (fun m d ->
                batching := Some { Detmt_gcs.Totem.max_batch = m; delay_ms = d })
          | "delay" ->
            Scanf.sscanf rest "seq=%d dest=%d extra_ms=%f" (fun seq dest e ->
                entries := Delay { seq; dest; extra_ms = e } :: !entries)
          | "reorder" ->
            Scanf.sscanf rest "at=%d pick=%d" (fun at_index pick ->
                entries := Reorder { at_index; pick } :: !entries)
          | "flush" ->
            Scanf.sscanf rest "after_seq=%d" (fun after_seq ->
                entries := Flush { after_seq } :: !entries)
          | "crash" ->
            Scanf.sscanf rest "replica=%d at_ms=%f recover_at_ms=%f"
              (fun replica at_ms recover_at_ms ->
                entries := Crash { replica; at_ms; recover_at_ms } :: !entries)
          | other -> fail_line n line ("unknown directive " ^ other))
      with Scanf.Scan_failure _ | End_of_file | Failure _ ->
        fail_line n line "malformed arguments"
  in
  List.iteri (fun i l -> parse_line (i + 1) l) (String.split_on_char '\n' s);
  match (!scheduler, !workload) with
  | Some scheduler, Some workload ->
    { scheduler; workload; seed = !seed; clients = !clients;
      requests = !requests; workers = !workers; batching = !batching;
      elastic = !elastic; entries = List.rev !entries }
  | None, _ -> failwith "Schedule.of_string: missing scheduler line"
  | _, None -> failwith "Schedule.of_string: missing workload line"

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
