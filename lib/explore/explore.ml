(* Bounded model checking over the nondeterminism the simulator admits.

   The envelope: per-delivery latency skews (via the Totem delivery oracle),
   same-instant event orderings (via the engine's tie-break oracle), forced
   early batch flushes (via the Totem flush oracle) and crash/recovery
   points.  Every point in the envelope is an admissible execution — the
   per-subscriber FIFO floor and the broadcast-time sequence stamping are
   never violated — so a deterministic scheduler must produce equivalent
   behaviour at all of them, and any divergence is a real bug.

   The search is a budget-bounded DFS.  Candidates are regenerated at every
   node from that node's own run (delivery times shift as perturbations
   accumulate), ranked by how many events the perturbation window overlaps,
   and pruned sleep-set-style: a delay whose window contains no other event
   commutes with everything and cannot change any interleaving. *)

open Detmt_sim
open Detmt_replication

(* ------------------------------ workloads ----------------------------- *)

let workload_names =
  [ "figure1"; "compute-heavy"; "disjoint"; "tail"; "prodcons"; "hotspot";
    "sharded-opaque" ]

(* The workspace stressor: 25% of the requests are Top-class opaque
   closures, so under wss/cgs+ws the envelope exercises speculative
   execution, the slot-order commit barrier and the abort/retry path. *)
let sharded_opaque_params =
  { Detmt_workload.Sharded.default with
    Detmt_workload.Sharded.cross_ratio = 0.0; opaque_ratio = 0.25 }

let resolve_workload = function
  | "figure1" ->
    ( Detmt_workload.Figure1.cls Detmt_workload.Figure1.default,
      Detmt_workload.Figure1.gen Detmt_workload.Figure1.default )
  | "compute-heavy" ->
    ( Detmt_workload.Figure1.cls Detmt_workload.Figure1.compute_heavy,
      Detmt_workload.Figure1.gen Detmt_workload.Figure1.compute_heavy )
  | "disjoint" ->
    ( Detmt_workload.Disjoint.cls Detmt_workload.Disjoint.default,
      Detmt_workload.Disjoint.gen )
  | "tail" ->
    ( Detmt_workload.Tail_compute.cls Detmt_workload.Tail_compute.default,
      Detmt_workload.Tail_compute.gen Detmt_workload.Tail_compute.default )
  | "prodcons" ->
    ( Detmt_workload.Prodcons.cls Detmt_workload.Prodcons.default,
      Detmt_workload.Prodcons.gen )
  | "hotspot" ->
    ( Detmt_workload.Hotspot.cls Detmt_workload.Hotspot.default,
      Detmt_workload.Hotspot.gen Detmt_workload.Hotspot.default )
  | "sharded-opaque" ->
    ( Detmt_workload.Sharded.cls sharded_opaque_params,
      Detmt_workload.Sharded.gen sharded_opaque_params )
  | other ->
    invalid_arg
      (Printf.sprintf "Explore: unknown workload %S (valid: %s)" other
         (String.concat ", " workload_names))

(* ------------------------------ one run ------------------------------- *)

type outcome = {
  o_replies : int;
  o_expected : int;
  o_outstanding : int;
  o_duplicate_replies : int;
  o_divergence : Consistency.divergence option;
  o_states_agree : bool;
  o_acquisitions_agree : bool;
  o_state_fps : (int * int64) list;
  o_recoveries : int;
  o_transitions : int; (* reconfiguration epochs applied; 0 on static runs *)
  o_epochs_agree : bool; (* vacuously true on static runs *)
  o_order_fp : int64;
  o_events : int;
  o_duration_ms : float;
}

(* What the canonical (or any observed) run exposes for candidate
   generation: every point-to-point delivery with its planned arrival, the
   width of every multi-way simultaneity, the executed-event journal and the
   number of total-order messages stamped. *)
type observation = {
  obs_deliveries : (int * int * float) list; (* seq, dest, planned_ms *)
  obs_ties : int list; (* count per multi-way tie instant *)
  obs_journal : float array;
  obs_broadcasts : int;
}

(* The fixed reconfiguration cycle an elastic schedule certifies: split the
   single group mid-run, merge it back while traffic is still flowing.  The
   window between the two commands (and the merge drain itself) is where
   crash candidates land. *)
let elastic_cycle =
  [ (6.0, Reconfig.Split 0);
    (20.0, Reconfig.Merge { from_g = 1; into = 0 }) ]

let elastic_window = (6.0, 20.0)

let entry_tables (s : Schedule.t) =
  let delays = Hashtbl.create 16
  and reorders = Hashtbl.create 16
  and flushes = Hashtbl.create 16 in
  List.iter
    (function
      | Schedule.Delay { seq; dest; extra_ms } ->
        Hashtbl.replace delays (seq, dest) extra_ms
      | Schedule.Reorder { at_index; pick } ->
        Hashtbl.replace reorders at_index pick
      | Schedule.Flush { after_seq } -> Hashtbl.replace flushes after_seq ()
      | Schedule.Crash _ -> ())
    s.Schedule.entries;
  (delays, reorders, flushes)

let tie_oracle engine ~observe ~reorders =
  let ties = ref [] and tie_index = ref 0 in
  if Hashtbl.length reorders > 0 || observe then
    Engine.set_order_oracle engine
      (Some
         (fun ~count ->
           let i = !tie_index in
           incr tie_index;
           if observe then ties := count :: !ties;
           match Hashtbl.find_opt reorders i with
           | Some pick when pick >= 0 && pick < count -> pick
           | _ -> 0));
  ties

let run_one_static ~replicas ~observe ~cls ~gen (s : Schedule.t) =
  let engine = Engine.create () in
  let params =
    { Active.default_params with
      scheduler = s.Schedule.scheduler; workers = s.Schedule.workers;
      replicas; batching = s.Schedule.batching }
  in
  let system = Active.create ~engine ~cls ~params () in
  let monitor = Consistency.create_monitor () in
  Active.set_checkpoint_sink system (fun ~replica ~seq ~hash ~state ->
      Consistency.observe monitor ~replica ~seq ~hash ~state);
  let delays, reorders, flushes = entry_tables s in
  List.iter
    (function
      | Schedule.Crash { replica; at_ms; recover_at_ms } ->
        Engine.schedule_at engine ~time:at_ms (fun () ->
            Active.kill_replica system replica);
        if recover_at_ms > at_ms then
          Active.recover_replica system ~at:recover_at_ms replica
      | _ -> ())
    s.Schedule.entries;
  let deliveries = ref [] in
  if Hashtbl.length delays > 0 || observe then
    Active.set_delivery_oracle system
      (Some
         (fun ~seq ~sender:_ ~dest ~planned_ms ->
           if observe then deliveries := (seq, dest, planned_ms) :: !deliveries;
           match Hashtbl.find_opt delays (seq, dest) with
           | Some extra -> extra
           | None -> 0.0));
  if Hashtbl.length flushes > 0 then
    Active.set_flush_oracle system
      (Some (fun ~seq ~pending:_ -> Hashtbl.mem flushes seq));
  let ties = tie_oracle engine ~observe ~reorders in
  if observe then Engine.set_journaling engine true;
  (* [until_ms = infinity] runs to queue drain but reports a stall through
     [run_outstanding] instead of raising: an introduced deadlock is a
     verdict here, not a harness failure. *)
  let stats =
    Client.run_clients_stats ~engine ~system ~clients:s.Schedule.clients
      ~requests_per_client:s.Schedule.requests ~gen
      ~seed:(Int64.of_int s.Schedule.seed) ~until_ms:Float.infinity ()
  in
  let report = Consistency.check (Active.live_replicas system) in
  let outcome =
    { o_replies = Active.replies_received system;
      o_expected = s.Schedule.clients * s.Schedule.requests;
      o_outstanding = stats.Client.run_outstanding;
      o_duplicate_replies = Active.duplicate_client_replies system;
      o_divergence = Consistency.first_divergence monitor;
      o_states_agree = report.Consistency.states_agree;
      o_acquisitions_agree = report.Consistency.acquisitions_agree;
      o_state_fps = report.Consistency.state_hashes;
      o_recoveries = Active.recoveries system;
      o_transitions = 0;
      o_epochs_agree = true;
      o_order_fp = Active.order_fingerprint system;
      o_events = Engine.events_executed engine;
      o_duration_ms = Engine.now engine }
  in
  let observation =
    { obs_deliveries = List.rev !deliveries;
      obs_ties = List.rev !ties;
      obs_journal = Engine.journal engine;
      obs_broadcasts = Active.broadcasts system }
  in
  (outcome, observation)

(* Elastic runs go through {!Reconfig} with the canonical split/merge cycle.
   Oracles and consistency monitors attach to every incarnation the run
   creates ([on_group]); delivery keys stay unambiguous across buses because
   each incarnation owns a distinct replica-id window.  Crash entries name
   offsets into group 0, which the cycle never retires. *)
let run_one_elastic ~replicas ~observe ~cls ~gen (s : Schedule.t) =
  let engine = Engine.create () in
  let delays, reorders, flushes = entry_tables s in
  let deliveries = ref [] and monitors = ref [] in
  let on_group ~index:_ sys =
    let monitor = Consistency.create_monitor () in
    monitors := !monitors @ [ monitor ];
    Active.set_checkpoint_sink sys (fun ~replica ~seq ~hash ~state ->
        Consistency.observe monitor ~replica ~seq ~hash ~state);
    if Hashtbl.length delays > 0 || observe then
      Active.set_delivery_oracle sys
        (Some
           (fun ~seq ~sender:_ ~dest ~planned_ms ->
             if observe then
               deliveries := (seq, dest, planned_ms) :: !deliveries;
             match Hashtbl.find_opt delays (seq, dest) with
             | Some extra -> extra
             | None -> 0.0));
    if Hashtbl.length flushes > 0 then
      Active.set_flush_oracle sys
        (Some (fun ~seq ~pending:_ -> Hashtbl.mem flushes seq))
  in
  let base =
    { Active.default_params with
      scheduler = s.Schedule.scheduler; workers = s.Schedule.workers;
      replicas; batching = s.Schedule.batching }
  in
  let system =
    Reconfig.create ~on_group ~engine ~cls
      ~params:{ Reconfig.default_params with base }
      ()
  in
  List.iter (fun (at, c) -> Reconfig.request_at system ~at c) elastic_cycle;
  List.iter
    (function
      | Schedule.Crash { replica; at_ms; recover_at_ms } ->
        Engine.schedule_at engine ~time:at_ms (fun () ->
            Reconfig.kill_replica system ~group:0 ~offset:replica);
        if recover_at_ms > at_ms then
          Reconfig.recover_replica system ~group:0 ~offset:replica
            ~at:recover_at_ms
      | _ -> ())
    s.Schedule.entries;
  let ties = tie_oracle engine ~observe ~reorders in
  if observe then Engine.set_journaling engine true;
  let stats =
    Reconfig.run_clients_stats system ~clients:s.Schedule.clients
      ~requests_per_client:s.Schedule.requests ~gen
      ~seed:(Int64.of_int s.Schedule.seed) ~until_ms:Float.infinity ()
  in
  let reports =
    List.map
      (fun sys -> Consistency.check (Active.live_replicas sys))
      (Reconfig.groups_ever system)
  in
  let outcome =
    { o_replies = Reconfig.replies_received system;
      o_expected = s.Schedule.clients * s.Schedule.requests;
      o_outstanding = stats.Client.run_outstanding;
      o_duplicate_replies = Reconfig.duplicate_client_replies system;
      o_divergence = List.find_map Consistency.first_divergence !monitors;
      o_states_agree =
        List.for_all (fun r -> r.Consistency.states_agree) reports;
      o_acquisitions_agree =
        List.for_all (fun r -> r.Consistency.acquisitions_agree) reports;
      o_state_fps =
        List.concat_map (fun r -> r.Consistency.state_hashes) reports;
      o_recoveries = Reconfig.recoveries system;
      o_transitions = Reconfig.epoch system;
      o_epochs_agree = Reconfig.epochs_agree system;
      o_order_fp = Reconfig.fingerprint system;
      o_events = Engine.events_executed engine;
      o_duration_ms = Engine.now engine }
  in
  let observation =
    { obs_deliveries = List.rev !deliveries;
      obs_ties = List.rev !ties;
      obs_journal = Engine.journal engine;
      obs_broadcasts = Reconfig.broadcasts system }
  in
  (outcome, observation)

let run_one ?(replicas = 3) ?(observe = false) ~cls ~gen (s : Schedule.t) =
  if s.Schedule.elastic then run_one_elastic ~replicas ~observe ~cls ~gen s
  else run_one_static ~replicas ~observe ~cls ~gen s

(* ------------------------------ verdicts ------------------------------ *)

type verdict = Equivalent | Order_shifted | Divergent of string

(* Two-tier check.  Replica-internal agreement (checkpoints, final states,
   acquisition orders, exactly-once replies, no introduced stall) must hold
   on EVERY admissible schedule — a violation indicts the scheduler
   directly.  Equality against the canonical run is only meaningful when the
   perturbation left the broadcast total order unchanged: closed-loop
   clients and scheduler control traffic feed delivery timing back into the
   order, so a shifted order legitimately yields different (internally
   consistent) results. *)
let classify ~canonical (o : outcome) =
  if o.o_divergence <> None then
    Divergent "replica checkpoint streams diverge"
  else if not o.o_states_agree then Divergent "final replica states diverge"
  else if o.o_recoveries = 0 && not o.o_acquisitions_agree then
    Divergent "per-mutex acquisition orders diverge"
  else if not o.o_epochs_agree then
    Divergent "epoch transitions diverge across replicas"
  else if o.o_transitions <> canonical.o_transitions then
    Divergent "reconfiguration did not apply"
  else if o.o_duplicate_replies > 0 then Divergent "duplicate client replies"
  else if o.o_outstanding > canonical.o_outstanding then
    Divergent "introduced client stall"
  else if o.o_order_fp = canonical.o_order_fp then
    if o.o_replies <> canonical.o_replies then
      Divergent "reply count differs under an identical total order"
    else if o.o_state_fps <> canonical.o_state_fps then
      Divergent "replica state differs under an identical total order"
    else Equivalent
  else Order_shifted

let verdict_to_string = function
  | Equivalent -> "equivalent"
  | Order_shifted -> "order-shifted"
  | Divergent r -> "DIVERGENT: " ^ r

(* -------------------------- candidate search -------------------------- *)

let default_skews = [ 0.3; 1.1 ]

let eps = 1e-9

(* Events strictly inside (from_ms, to_ms]: what a delay of that span could
   possibly interleave with differently. *)
let window_events journal ~from_ms ~to_ms =
  Array.fold_left
    (fun n t -> if t > from_ms +. eps && t <= to_ms +. eps then n + 1 else n)
    0 journal

let instant_events journal at =
  Array.fold_left
    (fun n t -> if Float.abs (t -. at) <= eps then n + 1 else n)
    0 journal

type search_stats = {
  explored : int; (* schedules actually run, canonical included *)
  pruned : int; (* candidates discarded by the empty-window rule *)
  order_shifted : int;
  max_frontier_depth : int;
}

type result = {
  stats : search_stats;
  divergent : (Schedule.t * string) list; (* unshrunk counterexamples *)
}

(* Candidates reachable in one step from a node, generated from the node's
   own observation (accumulated perturbations shift every later delivery, so
   parent-run candidates would dangle).  Ranked by window population:
   perturbations overlapping busy windows have the most interleavings to
   flip.  Returns (score, entry) pairs, best first, with prune accounting. *)
let candidates ?(skews = default_skews) ~pruned obs (s : Schedule.t) =
  let delayed = Hashtbl.create 16
  and reordered = Hashtbl.create 16
  and flushed = Hashtbl.create 16 in
  List.iter
    (function
      | Schedule.Delay { seq; dest; _ } ->
        Hashtbl.replace delayed (seq, dest) ()
      | Schedule.Reorder { at_index; _ } ->
        Hashtbl.replace reordered at_index ()
      | Schedule.Flush { after_seq } -> Hashtbl.replace flushed after_seq ()
      | Schedule.Crash _ -> ())
    s.Schedule.entries;
  let cands = ref [] in
  List.iter
    (fun (seq, dest, planned) ->
      if not (Hashtbl.mem delayed (seq, dest)) then
        List.iter
          (fun extra_ms ->
            let busy =
              window_events obs.obs_journal ~from_ms:planned
                ~to_ms:(planned +. extra_ms)
            in
            (* Empty-window pruning: exactly one event at the planned
               instant (this delivery) and none inside the skew window
               means the move commutes with every event in the run —
               admissible but incapable of changing any interleaving. *)
            if busy = 0 && instant_events obs.obs_journal planned <= 1 then
              incr pruned
            else
              cands :=
                (busy, Schedule.Delay { seq; dest; extra_ms }) :: !cands)
          skews)
    obs.obs_deliveries;
  List.iteri
    (fun i count ->
      if not (Hashtbl.mem reordered i) then
        (* Every non-canonical pick at a multi-way tie is a distinct
           interleaving by construction; score by tie width. *)
        for pick = 1 to min (count - 1) 2 do
          cands := (count, Schedule.Reorder { at_index = i; pick }) :: !cands
        done)
    obs.obs_ties;
  (match s.Schedule.batching with
  | None -> ()
  | Some _ ->
    for seq = 0 to obs.obs_broadcasts - 1 do
      if not (Hashtbl.mem flushed seq) then
        cands := (1, Schedule.Flush { after_seq = seq }) :: !cands
    done);
  (* Elastic runs also enumerate crash points inside the reconfiguration
     window — right after the split command lands, mid-epoch, and during
     the merge drain — each with a post-merge recovery.  One crash per
     schedule: a second one would leave group 0 without a live majority of
     history to transfer from. *)
  if
    s.Schedule.elastic
    && not
         (List.exists
            (function Schedule.Crash _ -> true | _ -> false)
            s.Schedule.entries)
  then begin
    let w_open, w_close = elastic_window in
    List.iter
      (fun at_ms ->
        List.iter
          (fun offset ->
            cands :=
              (2,
               Schedule.Crash
                 { replica = offset; at_ms; recover_at_ms = w_close +. 20.0 })
              :: !cands)
          [ 1; 2 ])
      [ w_open +. 1.0; (w_open +. w_close) /. 2.0; w_close -. 1.0 ]
  end;
  List.stable_sort (fun (a, _) (b, _) -> compare b a) !cands

let explore ?(skews = default_skews) ?(max_depth = 2) ?(max_width = 32)
    ?(stop_on_divergence = true) ?progress ~budget (base : Schedule.t) =
  let cls, gen = resolve_workload base.Schedule.workload in
  let root = Schedule.with_entries base [] in
  let canonical, root_obs = run_one ~observe:true ~cls ~gen root in
  let explored = ref 1
  and pruned = ref 0
  and shifted = ref 0
  and max_depth_seen = ref 0 in
  let divergent = ref [] in
  let rec truncate k = function
    | x :: rest when k > 0 -> x :: truncate (k - 1) rest
    | _ -> []
  in
  let push stack sched obs =
    let depth = Schedule.size sched + 1 in
    let cands = truncate max_width (candidates ~skews ~pruned obs sched) in
    (* fold over the reversed (worst-first) list so the best-ranked
       candidate is prepended last and ends up on top of the stack *)
    List.fold_left
      (fun acc (_, entry) ->
        (depth,
         Schedule.with_entries sched (sched.Schedule.entries @ [ entry ]))
        :: acc)
      stack (List.rev cands)
  in
  let stack = ref (push [] root root_obs) in
  let stop = ref false in
  while (not !stop) && !explored < budget && !stack <> [] do
    match !stack with
    | [] -> ()
    | (depth, sched) :: rest ->
      stack := rest;
      let outcome, obs = run_one ~observe:true ~cls ~gen sched in
      incr explored;
      if depth > !max_depth_seen then max_depth_seen := depth;
      (match classify ~canonical outcome with
      | Divergent reason ->
        divergent := (sched, reason) :: !divergent;
        if stop_on_divergence then stop := true
      | Order_shifted ->
        incr shifted;
        if depth < max_depth then stack := push !stack sched obs
      | Equivalent ->
        if depth < max_depth then stack := push !stack sched obs);
      Option.iter
        (fun f -> f ~explored:!explored ~divergent:(List.length !divergent))
        progress
  done;
  { stats =
      { explored = !explored; pruned = !pruned; order_shifted = !shifted;
        max_frontier_depth = !max_depth_seen };
    divergent = List.rev !divergent }

(* ------------------------------ shrinking ----------------------------- *)

(* Classic ddmin over the entry list: find a 1-minimal subset that still
   diverges.  Every probe is one full run, so the count is reported. *)
let shrink ?replicas (s : Schedule.t) =
  let cls, gen = resolve_workload s.Schedule.workload in
  let canonical, _ = run_one ?replicas ~cls ~gen (Schedule.with_entries s []) in
  let probes = ref 0 in
  let diverges entries =
    incr probes;
    let o, _ = run_one ?replicas ~cls ~gen (Schedule.with_entries s entries) in
    match classify ~canonical o with Divergent _ -> true | _ -> false
  in
  let rec take k = function
    | [] -> ([], [])
    | x :: rest when k > 0 ->
      let a, b = take (k - 1) rest in
      (x :: a, b)
    | rest -> ([], rest)
  in
  let rec chunks n lst =
    if n <= 0 || lst = [] then []
    else
      let size = (List.length lst + n - 1) / n in
      let a, b = take size lst in
      a :: chunks (n - 1) b
  in
  let rec ddmin entries n =
    let len = List.length entries in
    if len <= 1 then entries
    else
      let parts = List.filter (fun c -> c <> []) (chunks n entries) in
      let complement i =
        List.concat (List.filteri (fun j _ -> j <> i) parts)
      in
      let rec try_subsets i = function
        | [] -> None
        | part :: rest ->
          if diverges part then Some (`Subset part)
          else if List.length parts > 2 && diverges (complement i) then
            Some (`Complement (complement i))
          else try_subsets (i + 1) rest
      in
      match try_subsets 0 parts with
      | Some (`Subset part) -> ddmin part 2
      | Some (`Complement c) -> ddmin c (max (n - 1) 2)
      | None ->
        if n < len then ddmin entries (min (2 * n) len) else entries
  in
  if not (diverges s.Schedule.entries) then (s, !probes, false)
  else
    let minimal = ddmin s.Schedule.entries 2 in
    (Schedule.with_entries s minimal, !probes, true)

(* ------------------------------- replay ------------------------------- *)

let replay ?replicas (s : Schedule.t) =
  let cls, gen = resolve_workload s.Schedule.workload in
  let canonical, _ = run_one ?replicas ~cls ~gen (Schedule.with_entries s []) in
  let outcome, _ = run_one ?replicas ~cls ~gen s in
  (classify ~canonical outcome, canonical, outcome)
