(** Bounded schedule-space exploration: a model checker over the
    nondeterminism the simulator admits.

    The envelope is the set of admissible executions reachable from the
    canonical one by: delaying individual point-to-point deliveries (the
    Totem delivery oracle; the per-subscriber FIFO floor keeps the GCS
    contract), picking a different event at a multi-way simultaneity (the
    engine's tie-break oracle), forcing early batch flushes, and
    crash/recovery points.  A deterministic scheduler must stay internally
    consistent — checkpoint streams, final states, acquisition orders,
    exactly-once replies, no introduced stall — at {e every} point of the
    envelope, and must reproduce the canonical replies and states at every
    point that leaves the broadcast total order unchanged.

    Search is budget-bounded DFS with per-node candidate regeneration and
    sleep-set-style pruning of perturbations whose window no other event
    shares (they commute with the whole run).  Divergences shrink to
    1-minimal replayable witnesses via ddmin.

    A schedule marked [elastic] runs through
    {!Detmt_replication.Reconfig} with a canonical split/merge cycle
    (split at 6 ms, merge back at 20 ms of virtual time); the oracle set
    then additionally demands that every epoch transition applies and is
    observed bit-identically by every replica of every incarnation, and
    candidate generation enumerates crash/recovery points {e inside} the
    reconfiguration window. *)

val workload_names : string list

val resolve_workload :
  string ->
  Detmt_lang.Class_def.t
  * (client:int ->
    seq:int ->
    Detmt_sim.Rng.t ->
    string * Detmt_lang.Ast.value array)
(** Workload class and request generator by name.
    @raise Invalid_argument on an unknown name. *)

type outcome = {
  o_replies : int;
  o_expected : int;
  o_outstanding : int;  (** clients still waiting when the queue drained *)
  o_duplicate_replies : int;
  o_divergence : Detmt_replication.Consistency.divergence option;
      (** first checkpoint disagreement caught during the run *)
  o_states_agree : bool;
  o_acquisitions_agree : bool;
  o_state_fps : (int * int64) list;
  o_recoveries : int;
  o_transitions : int;
      (** reconfiguration epochs applied; 0 on static schedules *)
  o_epochs_agree : bool;
      (** every replica of every incarnation saw each epoch transition at
          the same total-order slot; vacuously true on static schedules *)
  o_order_fp : int64;
      (** broadcast total-order fingerprint (on elastic schedules:
          {!Detmt_replication.Reconfig.fingerprint}, which also folds the
          transition log) *)
  o_events : int;
  o_duration_ms : float;
}

type observation = {
  obs_deliveries : (int * int * float) list;
      (** every point-to-point delivery: (seq, dest, planned arrival) *)
  obs_ties : int list;  (** width of each multi-way simultaneity, in order *)
  obs_journal : float array;  (** executed-event times *)
  obs_broadcasts : int;
}

val run_one :
  ?replicas:int ->
  ?observe:bool ->
  cls:Detmt_lang.Class_def.t ->
  gen:Detmt_replication.Client.request_gen ->
  Schedule.t ->
  outcome * observation
(** Execute one schedule (default 3 replicas).  With [observe] (default
    false) the run also journals events and records every delivery and tie
    instant — the raw material for candidate generation.  A schedule with no
    entries is the canonical run. *)

type verdict =
  | Equivalent
      (** same total order, same replies and states as canonical *)
  | Order_shifted
      (** the perturbation moved the broadcast total order itself (timing
          feeds back through closed-loop clients and control traffic);
          internally consistent, hence admissible *)
  | Divergent of string  (** a real scheduler-determinism violation *)

val classify : canonical:outcome -> outcome -> verdict

val verdict_to_string : verdict -> string

val default_skews : float list
(** Delivery-delay magnitudes (ms) tried per delivery during enumeration:
    jitter-scale, below the failure-detection timeout.  Witness replay is
    not limited to these — a checked-in schedule may carry any [extra_ms]. *)

type search_stats = {
  explored : int;  (** schedules run, canonical included *)
  pruned : int;  (** candidates dropped by the empty-window rule *)
  order_shifted : int;
  max_frontier_depth : int;
}

type result = {
  stats : search_stats;
  divergent : (Schedule.t * string) list;  (** unshrunk counterexamples *)
}

val explore :
  ?skews:float list ->
  ?max_depth:int ->
  ?max_width:int ->
  ?stop_on_divergence:bool ->
  ?progress:(explored:int -> divergent:int -> unit) ->
  budget:int ->
  Schedule.t ->
  result
(** Bounded-DFS over the envelope rooted at [base] with its entries cleared;
    at most [budget] runs, schedules of at most [max_depth] entries
    (default 2), at most [max_width] children pushed per node (default 32,
    best-ranked first).  Stops at the first divergence unless
    [stop_on_divergence:false]. *)

val shrink : ?replicas:int -> Schedule.t -> Schedule.t * int * bool
(** [shrink s] delta-debugs [s]'s entries to a 1-minimal list that still
    yields a [Divergent] verdict.  Returns [(minimal, probes, diverged)];
    when [diverged] is false the input did not reproduce and is returned
    unchanged. *)

val replay :
  ?replicas:int -> Schedule.t -> verdict * outcome * outcome
(** Run the canonical schedule and then [s]; returns
    [(verdict, canonical, perturbed)]. *)
