(** Replayable perturbation schedules — the explorer's search points and
    counterexample format.

    A schedule names one run configuration (scheduler, workload, seed,
    client matrix, optional delivery batching) plus a list of perturbation
    {!entry} values, each one admissible deviation from the canonical
    execution.  Entries are keyed by stable identifiers — total-order
    sequence numbers, replica ids, tie-instant indices — not absolute
    times, so removing entries during shrinking never invalidates the
    survivors. *)

type entry =
  | Delay of { seq : int; dest : int; extra_ms : float }
      (** deliver total-order message [seq] to replica [dest] this much
          later than its planned arrival (the per-subscriber FIFO floor
          still applies, so this delays a suffix but never reorders it) *)
  | Reorder of { at_index : int; pick : int }
      (** at the [at_index]-th instant where several events are eligible
          simultaneously, run the [pick]-th (canonical order) instead of
          the first *)
  | Flush of { after_seq : int }
      (** force the open delivery batch onto the wire right after message
          [after_seq] joins it; no-op when batching is off *)
  | Crash of { replica : int; at_ms : float; recover_at_ms : float }
      (** kill [replica] at [at_ms] and recover it at [recover_at_ms]
          ([recover_at_ms <= at_ms]: no recovery) *)

type t = {
  scheduler : string;  (** a {!Detmt_sched.Registry} name *)
  workload : string;  (** an {!Explore.workload_names} name *)
  seed : int;
  clients : int;
  requests : int;  (** requests per client *)
  workers : int;
      (** simulated worker-pool width (parallel scheduler family only).
          Serialized as a [workers N] header line only when [<> 1], so
          pre-parallel witnesses round-trip unchanged. *)
  batching : Detmt_gcs.Totem.batching option;
  elastic : bool;
      (** run through {!Detmt_replication.Reconfig} with the canonical
          split/merge cycle instead of a static group; [Crash] entries then
          name offsets into group 0.  Serialized as an [elastic true] header
          line only when set, so pre-elastic witnesses parse unchanged. *)
  entries : entry list;
}

val make :
  ?seed:int ->
  ?clients:int ->
  ?requests:int ->
  ?workers:int ->
  ?batching:Detmt_gcs.Totem.batching ->
  ?elastic:bool ->
  scheduler:string ->
  workload:string ->
  entry list ->
  t
(** Defaults: seed 42, 4 clients x 5 requests, 1 worker, no batching, not
    elastic. *)

val size : t -> int
(** Number of perturbation entries. *)

val with_entries : t -> entry list -> t

val to_string : t -> string
(** Line-based text form (the on-disk witness format): a header of
    [key value] lines followed by one line per entry. *)

val of_string : string -> t
(** Inverse of {!to_string}; blank lines and [#] comments are ignored.
    @raise Failure on a malformed line or a missing header field. *)

val save : t -> string -> unit

val load : string -> t
(** @raise Failure on parse errors, [Sys_error] on IO errors. *)
