open Detmt_lang

type params = {
  objects : int;
  skew : float;
  drift_every : int;
  drift_step : int;
  cross_ratio : float;
  hold_ms : float;
  tail_ms : float;
}

let default =
  { objects = 64; skew = 1.1; drift_every = 32; drift_step = 7;
    cross_ratio = 0.05; hold_ms = 1.0; tail_ms = 0.0 }

let update_method = "update"

let transfer_method = "transfer"

let locked p =
  let open Builder in
  (if p.hold_ms > 0.0 then [ compute p.hold_ms ] else [])
  @ [ state_incr "state" 1 ]

(* Same replicated object as {!Sharded} — one- and two-object closures over
   a partitionable mutex space — only the client-side draw differs.  The
   class is what the schedulers see; the skew lives entirely in which
   arguments clients ship. *)
let cls p =
  let open Builder in
  if p.objects < 1 then invalid_arg "Hotspot.cls: objects < 1";
  let tail = if p.tail_ms > 0.0 then [ compute p.tail_ms ] else [] in
  cls ~cname:"Hotspot" ~state_fields:[ "state" ]
    [ meth update_method ~params:1 (sync (arg 0) (locked p) :: tail);
      meth transfer_method ~params:2
        ([ sync (arg 0) (locked p); sync (arg 1) (locked p) ] @ tail);
    ]

(* Zipf(s) over ranks 0..n-1 by inversion of the precomputed CDF: rank r
   has mass (r+1)^-s / H.  The table depends only on (objects, skew), so we
   memoise the last one — sweeps rebuild it once per grid point. *)
let cdf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 4

let zipf_cdf p =
  match Hashtbl.find_opt cdf_cache (p.objects, p.skew) with
  | Some c -> c
  | None ->
    let w = Array.init p.objects (fun r -> (float_of_int (r + 1)) ** -.p.skew) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let acc = ref 0.0 in
    let c =
      Array.map
        (fun x ->
          acc := !acc +. (x /. total);
          !acc)
        w
    in
    c.(p.objects - 1) <- 1.0;
    Hashtbl.replace cdf_cache (p.objects, p.skew) c;
    c

let rank_of_draw cdf u =
  (* first rank whose cumulative mass covers u *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(* The hotspot drifts with the {e request sequence number}, not with time:
   every client agrees on where the hot zone sits for its k-th request
   without any shared state, and equal-seed runs draw identical objects. *)
let center p ~seq =
  if p.drift_every <= 0 then 0
  else seq / p.drift_every * p.drift_step mod p.objects

let draw p cdf ~seq rng =
  let u = Detmt_sim.Rng.float rng 1.0 in
  let rank = rank_of_draw cdf u in
  (center p ~seq + rank) mod p.objects

let gen p ~client:_ ~seq rng =
  let cdf = zipf_cdf p in
  if Detmt_sim.Rng.bool rng p.cross_ratio then begin
    let a = draw p cdf ~seq rng in
    let d = 1 + Detmt_sim.Rng.int rng (max 1 (p.objects - 1)) in
    let b = (a + d) mod p.objects in
    (transfer_method, [| Ast.Vmutex a; Ast.Vmutex b |])
  end
  else (update_method, [| Ast.Vmutex (draw p cdf ~seq rng) |])
