(** The sharded-replication workload: a partitionable object space with a
    tunable cross-shard ratio.

    The replicated object exposes two start methods over [objects] mutexes
    (the "object space" the {!Detmt_replication.Shard} router partitions):

    - ["update"]: lock one client-chosen object, hold it for [hold_ms] of
      computation, bump the shared counter — a single-object request whose
      lock closure always lands on one shard (the fast path);
    - ["transfer"]: the same sequence over two distinct client-chosen
      objects — with probability ≈ 1 - 1/shards its closure spans two
      shards and exercises the cross-shard two-phase path.

    [cross_ratio] is the probability a request is a transfer; [tail_ms]
    adds lock-free computation after the critical section(s).  As always,
    every random decision is drawn client-side and shipped in the request
    arguments. *)

type params = {
  objects : int;  (** size of the object (mutex) space *)
  cross_ratio : float;  (** probability of a two-object transfer *)
  opaque_ratio : float;
      (** probability of an ["opaque_update"]: the same single-object
          shape as ["update"], but synchronised through a local variable
          the prediction analysis cannot resolve — its conflict class is
          [Top], the misprediction injector for the workspace safety net.
          It bumps a dedicated ["opaque"] counter (not the hot shared
          ["state"]), so its dynamic footprint is near-disjoint from the
          rest of the workload.  A zero ratio (the default) adds neither
          the method, the field, nor any RNG draw, keeping existing
          streams bit-identical. *)
  hold_ms : float;  (** computation inside each critical section *)
  tail_ms : float;  (** lock-free computation after the last unlock *)
}

val default : params
(** 64 objects, 10% transfers, no opaque requests, 1 ms hold, no tail. *)

val cls : params -> Detmt_lang.Class_def.t
(** @raise Invalid_argument when [objects < 1]. *)

val gen : params -> Detmt_replication.Client.request_gen

val update_method : string

val transfer_method : string

val opaque_method : string
