open Detmt_lang

type params = {
  objects : int;
  cross_ratio : float;
  hold_ms : float;
  tail_ms : float;
}

let default =
  { objects = 64; cross_ratio = 0.1; hold_ms = 1.0; tail_ms = 0.0 }

let update_method = "update"

let transfer_method = "transfer"

let locked p =
  let open Builder in
  (if p.hold_ms > 0.0 then [ compute p.hold_ms ] else [])
  @ [ state_incr "state" 1 ]

let cls p =
  let open Builder in
  if p.objects < 1 then invalid_arg "Sharded.cls: objects < 1";
  let tail = if p.tail_ms > 0.0 then [ compute p.tail_ms ] else [] in
  cls ~cname:"Sharded" ~state_fields:[ "state" ]
    [ meth update_method ~params:1 (sync (arg 0) (locked p) :: tail);
      meth transfer_method ~params:2
        ([ sync (arg 0) (locked p); sync (arg 1) (locked p) ] @ tail);
    ]

(* Client-drawn decisions, as everywhere in the paper's setup: whether this
   request crosses objects, and which object(s) it touches.  The two
   transfer endpoints are forced distinct (when possible) so a cross-shard
   ratio > 0 actually produces multi-object closures. *)
let gen p ~client:_ ~seq:_ rng =
  if Detmt_sim.Rng.bool rng p.cross_ratio then begin
    let a = Detmt_sim.Rng.int rng p.objects in
    let d = 1 + Detmt_sim.Rng.int rng (max 1 (p.objects - 1)) in
    let b = (a + d) mod p.objects in
    (transfer_method, [| Ast.Vmutex a; Ast.Vmutex b |])
  end
  else (update_method, [| Ast.Vmutex (Detmt_sim.Rng.int rng p.objects) |])
