open Detmt_lang

type params = {
  objects : int;
  cross_ratio : float;
  opaque_ratio : float;
  hold_ms : float;
  tail_ms : float;
}

let default =
  { objects = 64; cross_ratio = 0.1; opaque_ratio = 0.0; hold_ms = 1.0;
    tail_ms = 0.0 }

let update_method = "update"

let transfer_method = "transfer"

let opaque_method = "opaque_update"

let locked p =
  let open Builder in
  (if p.hold_ms > 0.0 then [ compute p.hold_ms ] else [])
  @ [ state_incr "state" 1 ]

let cls p =
  let open Builder in
  if p.objects < 1 then invalid_arg "Sharded.cls: objects < 1";
  if p.opaque_ratio < 0.0 || p.opaque_ratio > 1.0 then
    invalid_arg "Sharded.cls: opaque_ratio outside [0,1]";
  let tail = if p.tail_ms > 0.0 then [ compute p.tail_ms ] else [] in
  cls ~cname:"Sharded"
    ~state_fields:
      ("state" :: (if p.opaque_ratio > 0.0 then [ "opaque" ] else []))
    ([ meth update_method ~params:1 (sync (arg 0) (locked p) :: tail);
       meth transfer_method ~params:2
         ([ sync (arg 0) (locked p); sync (arg 1) (locked p) ] @ tail);
     ]
    @
    (* The misprediction injector: the same single-object shape as [update],
       but the sync target reaches the lock through a local, which the §4.3
       analysis cannot resolve to an argument — the class is opaque ([Top])
       even though the dynamic closure is one mutex.  It bumps its own
       ["opaque"] counter rather than the hot shared ["state"], so its
       read/write footprint overlaps only other opaque requests: statically
       worst-case, dynamically near-disjoint — exactly the gap a workspace
       safety net can recover.  Only materialised when requested, so
       default-parameter classes (and their syncids, traces and goldens)
       are untouched. *)
    if p.opaque_ratio > 0.0 then
      [ meth opaque_method ~params:1
          (assign "x" (marg 0)
          :: sync (local "x")
               ((if p.hold_ms > 0.0 then [ compute p.hold_ms ] else [])
               @ [ state_incr "opaque" 1 ])
          :: tail) ]
    else [])

(* Client-drawn decisions, as everywhere in the paper's setup: whether this
   request crosses objects, and which object(s) it touches.  The two
   transfer endpoints are forced distinct (when possible — with one object
   a cross draw degenerates to a self-transfer, whose duplicate endpoints
   the shard router collapses onto the single-shard fast path).  The
   [opaque_ratio] draw is guarded so a zero ratio consumes no randomness
   and leaves existing request streams bit-identical. *)
let gen p ~client:_ ~seq:_ rng =
  if p.opaque_ratio > 0.0 && Detmt_sim.Rng.bool rng p.opaque_ratio then
    (opaque_method, [| Ast.Vmutex (Detmt_sim.Rng.int rng p.objects) |])
  else if Detmt_sim.Rng.bool rng p.cross_ratio then begin
    let a = Detmt_sim.Rng.int rng p.objects in
    let d = 1 + Detmt_sim.Rng.int rng (max 1 (p.objects - 1)) in
    let b = (a + d) mod p.objects in
    (transfer_method, [| Ast.Vmutex a; Ast.Vmutex b |])
  end
  else (update_method, [| Ast.Vmutex (Detmt_sim.Rng.int rng p.objects) |])
