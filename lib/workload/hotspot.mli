(** The elastic-reconfiguration workload: Zipf-skewed object popularity with
    a drifting hotspot.

    Same replicated object as {!Sharded} — ["update"] locks one
    client-chosen object, ["transfer"] locks two — but the client draw is
    skewed: object ranks follow a Zipf([skew]) law (rank [r] drawn with
    probability proportional to [(r+1){^ -skew}]), and the rank-0 {e center}
    of the hot zone drifts deterministically with the request sequence
    number: for a client's [seq]-th request it sits at
    [seq / drift_every * drift_step mod objects].

    The skew concentrates load on whichever groups own the hot zone's slots
    — the imbalance a static partition cannot fix and
    {!Detmt_replication.Reconfig}'s autoscaler splits away; the drift then
    moves the zone so yesterday's hot groups go cold and get merged back.
    As always, every random decision is drawn client-side and shipped in
    the request arguments, so the workload is a pure function of
    (params, client seed). *)

type params = {
  objects : int;  (** size of the object (mutex) space *)
  skew : float;  (** Zipf exponent [s]; 0 = uniform, higher = hotter *)
  drift_every : int;
      (** requests (per client) between hotspot moves; [<= 0] pins it *)
  drift_step : int;  (** objects the center advances per move *)
  cross_ratio : float;  (** probability of a two-object transfer *)
  hold_ms : float;  (** computation inside each critical section *)
  tail_ms : float;  (** lock-free computation after the last unlock *)
}

val default : params
(** 64 objects, skew 1.1, drift 7 objects every 32 requests, 5% transfers,
    1 ms hold. *)

val cls : params -> Detmt_lang.Class_def.t
(** @raise Invalid_argument when [objects < 1]. *)

val gen : params -> Detmt_replication.Client.request_gen

val center : params -> seq:int -> int
(** Where the hot zone's rank-0 object sits for a client's [seq]-th request
    — exposed for tests and bench labelling. *)

val update_method : string

val transfer_method : string
