open Detmt_sim

type partition = {
  src : int option;
  dst : int option;
  from_ms : float;
  until_ms : float;
}

type spec = {
  seed : int64;
  jitter_ms : float;
  loss_prob : float;
  rto_ms : float;
  max_retransmits : int;
  dup_prob : float;
  dup_extra_ms : float;
  partitions : partition list;
}

let none =
  { seed = 1L; jitter_ms = 0.0; loss_prob = 0.0; rto_ms = 2.0;
    max_retransmits = 16; dup_prob = 0.0; dup_extra_ms = 0.5;
    partitions = [] }

let validate spec =
  if spec.jitter_ms < 0.0 then invalid_arg "Faults: negative jitter";
  if spec.loss_prob < 0.0 || spec.loss_prob >= 1.0 then
    invalid_arg "Faults: loss probability must lie in [0, 1)";
  if spec.rto_ms <= 0.0 then invalid_arg "Faults: non-positive rto";
  if spec.max_retransmits < 0 then invalid_arg "Faults: negative retransmits";
  if spec.dup_prob < 0.0 || spec.dup_prob > 1.0 then
    invalid_arg "Faults: duplicate probability must lie in [0, 1]";
  if spec.dup_extra_ms < 0.0 then invalid_arg "Faults: negative dup delay";
  List.iter
    (fun p ->
      if p.until_ms < p.from_ms then
        invalid_arg "Faults: partition heals before it starts")
    spec.partitions

type t = {
  spec : spec;
  mutable transmissions : int;
  mutable losses : int;
  mutable duplicates : int;
  mutable partition_holds : int;
}

let create spec =
  validate spec;
  { spec; transmissions = 0; losses = 0; duplicates = 0; partition_holds = 0 }

let spec t = t.spec

type delivery = {
  arrival_ms : float;
  duplicate_extra_ms : float option;
  retransmits : int;
}

(* The fault outcome of one point-to-point transmission is a pure function of
   (seed, seq, sender, dest): replays are bit-identical no matter in which
   order the simulation asks, and the same link sees the same weather in every
   run with the same seed. *)
let link_rng t ~seq ~sender ~dest =
  let h = (((seq * 1_000_003) lxor (sender * 8191)) * 31) lxor dest in
  Rng.create (Int64.logxor t.spec.seed (Int64.of_int h))

let matches p ~sender ~dest =
  (match p.src with None -> true | Some s -> s = sender)
  && match p.dst with None -> true | Some d -> d = dest

(* A transmission attempted while the link is cut keeps being retransmitted
   until the partition heals; the first attempt after the heal is subject to
   the normal loss/jitter model. *)
let heal_time t ~sender ~dest ~at =
  List.fold_left
    (fun acc p ->
      if matches p ~sender ~dest && at >= p.from_ms && at < p.until_ms then
        Float.max acc p.until_ms
      else acc)
    at t.spec.partitions

let plan t ~seq ~sender ~dest ~sent_at ~base_latency_ms =
  t.transmissions <- t.transmissions + 1;
  let rng = link_rng t ~seq ~sender ~dest in
  let send_at = heal_time t ~sender ~dest ~at:sent_at in
  if send_at > sent_at then t.partition_holds <- t.partition_holds + 1;
  let jitter =
    if t.spec.jitter_ms > 0.0 then Rng.float rng t.spec.jitter_ms else 0.0
  in
  let rec attempts k =
    if k >= t.spec.max_retransmits then k
    else if t.spec.loss_prob > 0.0 && Rng.bool rng t.spec.loss_prob then
      attempts (k + 1)
    else k
  in
  let lost = attempts 0 in
  t.losses <- t.losses + lost;
  let arrival_ms =
    send_at +. base_latency_ms +. jitter
    +. (float_of_int lost *. t.spec.rto_ms)
  in
  let duplicate_extra_ms =
    if t.spec.dup_prob > 0.0 && Rng.bool rng t.spec.dup_prob then begin
      t.duplicates <- t.duplicates + 1;
      Some (Rng.float rng (Float.max t.spec.dup_extra_ms epsilon_float))
    end
    else None
  in
  { arrival_ms; duplicate_extra_ms; retransmits = lost }

let transmissions t = t.transmissions

let losses t = t.losses

let duplicates_injected t = t.duplicates

let partition_holds t = t.partition_holds

let pp_stats ppf t =
  Format.fprintf ppf
    "%d transmissions, %d retransmits, %d duplicates, %d partition holds"
    t.transmissions t.losses t.duplicates t.partition_holds
