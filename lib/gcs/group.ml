open Detmt_sim

type cause = Initial | Failure of int list | Join of int

type view = {
  number : int;
  members : int list;
  leader : int;
  cause : cause;
  epoch : int; (* routing epoch the membership is tagged with *)
}

type t = {
  engine : Engine.t;
  detection_timeout_ms : float;
  mutable view : view;
  mutable dead : int list;
  mutable epoch : int;
      (* the elastic routing epoch this group currently serves; stamped into
         every view so membership changes are attributable to an epoch *)
  mutable seniority : int list;
      (* membership age order: the leader is the most senior live member.
         Initially the sorted member list (leader = lowest id, as in the
         paper's experiments); a rejoining member goes to the back so it
         cannot snatch leadership from a replica that never failed. *)
  mutable callbacks : (view -> unit) list; (* reverse registration order *)
  mutable detect_h : Engine.handler_id;
      (* typed detection-timeout event, arg = the suspected member id *)
}

let make_view ~seniority ~epoch number members cause =
  match members with
  | [] -> invalid_arg "Group: view with no members"
  | _ ->
    let leader =
      match List.find_opt (fun s -> List.mem s members) seniority with
      | Some l -> l
      | None -> List.fold_left min max_int members
    in
    { number; members; leader; cause; epoch }

let install_view t members cause =
  t.view <-
    make_view ~seniority:t.seniority ~epoch:t.epoch (t.view.number + 1)
      members cause;
  List.iter (fun f -> f t.view) (List.rev t.callbacks)

(* Detection timeout expiry: recompute survivors at detection time — several
   members may have failed, or rejoined, while the timeout was running. *)
let detect t id =
  if List.mem id t.dead then begin
    let survivors =
      List.filter (fun m -> not (List.mem m t.dead)) t.view.members
    in
    let removed = List.filter (fun m -> List.mem m t.dead) t.view.members in
    if List.mem id t.view.members && survivors <> [] then
      install_view t survivors (Failure removed)
  end

let create ?(epoch = 0) engine ~members ~detection_timeout_ms =
  if members = [] then invalid_arg "Group.create: empty member list";
  let seniority = List.sort compare members in
  let t =
    { engine; detection_timeout_ms;
      view = make_view ~seniority ~epoch 0 seniority Initial;
      dead = []; epoch; seniority; callbacks = []; detect_h = 0 }
  in
  t.detect_h <- Engine.register_handler engine (fun id -> detect t id);
  t

let current_view t = t.view

let alive t id = not (List.mem id t.dead)

let leader t = t.view.leader

let on_view_change t f = t.callbacks <- f :: t.callbacks

let epoch t = t.epoch

(* An epoch bump is not itself a membership change: the new tag shows up on
   the next installed view.  The replication layer anchors the transition on
   a total-order barrier, so every replica tags at the same logical slot. *)
let set_epoch t epoch =
  if epoch < t.epoch then
    invalid_arg "Group.set_epoch: epochs are monotone";
  t.epoch <- epoch

let kill t id =
  if not (List.mem id t.dead) then begin
    t.dead <- id :: t.dead;
    Engine.post t.engine ~delay:t.detection_timeout_ms t.detect_h id
  end

let kill_at t id ~time =
  Engine.schedule_at t.engine ~time (fun () -> kill t id)

let join t id =
  t.dead <- List.filter (fun d -> d <> id) t.dead;
  if not (List.mem id t.view.members) then begin
    t.seniority <- List.filter (fun s -> s <> id) t.seniority @ [ id ];
    install_view t (List.sort compare (id :: t.view.members)) (Join id)
  end
