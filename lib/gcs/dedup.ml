type t = {
  table : (int * int, unit) Hashtbl.t;
  mutable duplicates : int;
}

let create () = { table = Hashtbl.create 64; duplicates = 0 }

let seen t ~client ~request = Hashtbl.mem t.table (client, request)

let mark t ~client ~request =
  if seen t ~client ~request then begin
    t.duplicates <- t.duplicates + 1;
    true
  end
  else begin
    Hashtbl.add t.table (client, request) ();
    false
  end

let count t = Hashtbl.length t.table

let duplicates t = t.duplicates

(* State transfer: the rejoining replica inherits the donor's seen-set so a
   client retry of an already-executed request stays suppressed. *)
let copy t = { table = Hashtbl.copy t.table; duplicates = 0 }

(* Shard merge: the surviving group absorbs the retiring group's ledger so a
   retry of a request the retired group executed stays suppressed after its
   objects were re-routed. *)
let merge ~into t =
  Hashtbl.iter
    (fun k () -> if not (Hashtbl.mem into.table k) then Hashtbl.add into.table k ())
    t.table
