(** Group membership with failure detection, view changes and rejoins.

    A killed member stops participating immediately; the surviving members
    detect the failure after [detection_timeout_ms] and install a new view.
    The leader of a view is its most senior member — initially the
    lowest-numbered one, which is what the take-over-time experiment
    (section 3.5: LSA "depends on the leader replica ... in case of a failure
    this might lead to a high take-over time") is built on.  A member that
    {!join}s after a failure re-enters at the back of the seniority order, so
    recovery never steals leadership from a replica that stayed up. *)

type cause =
  | Initial  (** the view the group was created with *)
  | Failure of int list  (** members removed by failure detection *)
  | Join of int  (** a (re)joining member was added *)

type view = {
  number : int;
  members : int list;
  leader : int;
  cause : cause;
  epoch : int;
      (** the elastic routing epoch the membership was installed under
          ({!set_epoch}); [0] for a group that never reconfigured *)
}

type t

val create :
  ?epoch:int ->
  Detmt_sim.Engine.t ->
  members:int list ->
  detection_timeout_ms:float ->
  t
(** [epoch] (default 0) tags the initial view — a group created mid-run by an
    elastic reconfiguration starts at the epoch that created it.
    @raise Invalid_argument on an empty member list. *)

val epoch : t -> int
(** The epoch subsequent views will be tagged with. *)

val set_epoch : t -> int -> unit
(** Advance the epoch tag (monotone).  Installed by the replication layer at
    a total-order barrier; the current view is left untouched — the tag shows
    up on the next membership change.
    @raise Invalid_argument when the epoch would move backwards. *)

val current_view : t -> view

val alive : t -> int -> bool

val leader : t -> int

val on_view_change : t -> (view -> unit) -> unit
(** Register a callback run when a new view is installed (after failure
    detection, or immediately on a join). Callbacks run in registration
    order. *)

val kill : t -> int -> unit
(** Mark a member failed now; the view change fires after the detection
    timeout.  Killing a dead member is a no-op. *)

val kill_at : t -> int -> time:float -> unit
(** Schedule a failure at an absolute virtual time. *)

val join : t -> int -> unit
(** A recovered member rejoins now: it is removed from the dead set and a
    [Join] view including it is installed immediately (the state-transfer
    handshake is the replication layer's job).  Joining a member already in
    the view only clears its dead flag. *)
