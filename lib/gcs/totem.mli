(** Total-order broadcast over the simulated network.

    Models the consensus-based group communication system the paper relies on
    ("FTflex uses a group communication system to guarantee that each replica
    receives all messages in a total order"): every broadcast is stamped with
    a global sequence number and delivered to every live subscriber in
    sequence order, after a per-destination latency.  Messages to a dead
    subscriber are dropped.

    The per-broadcast cost (number of point-to-point deliveries) is counted so
    experiments can report the network load of chatty algorithms such as
    LSA.

    An optional {!Faults} plan degrades the transport underneath: latency
    jitter, losses repaired by retransmit timers, duplicate packets and link
    partitions.  The GCS contract survives all of them — per-subscriber
    deliveries stay in sequence order (a FIFO floor) and every message is
    handed to the application exactly once (a per-subscriber sequence
    watermark suppresses transport duplicates).

    Optional {e batched delivery} models the paper's §3 batching-delay
    phenomenon at the transport: sequence numbers are still assigned at
    broadcast time (the total order is unchanged), but messages are held back
    and put on the wire together — when [max_batch] messages have
    accumulated, or [delay_ms] after the batch opened, whichever comes
    first.  Per-subscriber arrival times are then computed from the flush
    instant, so a batch amortizes broadcast overhead at the cost of added
    delivery latency for the messages that waited. *)

type 'a t

type batching = {
  max_batch : int;  (** flush when this many messages are pending (>= 1) *)
  delay_ms : float;  (** flush this long after a batch opens (>= 0) *)
}

val create :
  ?latency:(sender:int -> dest:int -> float) ->
  ?faults:Faults.t ->
  ?obs:Detmt_obs.Recorder.t ->
  ?batching:batching ->
  Detmt_sim.Engine.t ->
  'a t
(** Default latency: 0.5 ms for every pair; no faults; no batching (every
    broadcast goes on the wire immediately — [batching = Some {max_batch =
    1; _}] is behaviourally identical).  [obs] (default
    {!Detmt_obs.Recorder.disabled}) receives broadcast/delivery/dedup
    counters, the per-delivery watermark lag and — with batching — wire-batch
    counts and a batch-size histogram.
    @raise Invalid_argument when [max_batch < 1] or [delay_ms < 0]. *)

val subscribe : 'a t -> id:int -> ('a Message.t -> unit) -> unit
(** Register a destination.  Ids must be unique.
    @raise Invalid_argument on duplicate id. *)

val resubscribe : 'a t -> id:int -> ('a Message.t -> unit) -> unit
(** Rebind an existing id to a fresh handler and revive it (replica
    rejoin).  Messages broadcast while the id was dead are {e not} replayed
    here — state transfer is the replication layer's job.
    @raise Invalid_argument on an unknown id. *)

val broadcast : 'a t -> sender:int -> 'a -> int
(** Stamp and enqueue a message to all live subscribers; returns the sequence
    number.  The sender also receives its own message (self-delivery), as in
    closed-group total-order protocols. *)

val advance_watermark : 'a t -> id:int -> seq:int -> unit
(** Raise the subscriber's exactly-once watermark to [seq] (no-op when
    already past it).  Called after an out-of-band state transfer so stale
    in-flight copies addressed to the old incarnation are suppressed.
    Suppressions at or below [seq] are counted as {!watermark_suppressed},
    not {!suppressed_duplicates} — they are replay bookkeeping, not
    transport pathology.
    @raise Invalid_argument on an unknown id. *)

(** {2 Dead-sender batch semantics}

    A message sitting in the open batch when its {e sender} dies still
    flushes and delivers to every live subscriber.  This is deliberate: the
    sequence number was assigned at [broadcast] time, so the message owns a
    slot in the total order, and {!val:broadcast}'s caller (the replication
    layer) has already logged it for suffix replay.  Dropping it on sender
    death would leave a permanent gap for live replicas while a later
    recovery replays it from the log — two replicas would then disagree on
    the delivery prefix, which is exactly the divergence the GCS exists to
    prevent.  Sender liveness gates {e new} broadcasts, never sequenced
    ones. *)

val set_alive : 'a t -> int -> bool -> unit
(** Failure injection: a dead subscriber receives nothing until revived. *)

val is_alive : 'a t -> int -> bool

val broadcasts : 'a t -> int
(** Number of [broadcast] calls so far. *)

val deliveries : 'a t -> int
(** Number of point-to-point deliveries performed. *)

val batching : 'a t -> batching option
(** The batching policy the bus was created with. *)

val wire_batches : 'a t -> int
(** Number of batches flushed onto the wire; [0] when batching is
    disabled. *)

val pending_batched : 'a t -> int
(** Messages currently held back in the open batch ([0] when batching is
    disabled). *)

val suppressed_duplicates : 'a t -> int
(** True transport duplicates the sequence watermark kept from the
    application.  Stale copies already covered by an out-of-band
    {!advance_watermark} are excluded — see {!watermark_suppressed}. *)

val watermark_suppressed : 'a t -> int
(** Stale in-flight copies suppressed because {!advance_watermark} marked
    them replay-covered (post-recovery state transfer).  Previously folded
    into {!suppressed_duplicates}, which made recovery flushes look like
    transport duplication in the chaos summaries. *)

val set_delivery_oracle :
  'a t ->
  (seq:int -> sender:int -> dest:int -> planned_ms:float -> float) option ->
  unit
(** Explorer hook: extra non-negative latency added to one point-to-point
    delivery, consulted after the fault plan computes the arrival time
    ([planned_ms]).  The per-subscriber FIFO floor still applies afterwards,
    so the GCS ordering contract is preserved under any oracle; negative
    answers are clamped to [0].  The oracle is also a convenient observation
    tap: it sees every (seq, sender, dest, planned arrival) tuple of the
    run.  [None] (default) removes the hook. *)

val set_flush_oracle : 'a t -> (seq:int -> pending:int -> bool) option -> unit
(** Explorer hook: consulted after each broadcast is added to the open batch
    (batching mode only) with the new message's [seq] and the number of
    [pending] messages; answering [true] forces an immediate wire flush, as
    if the size trigger had fired.  This perturbs only {e when} batches hit
    the wire, never the total order.  [None] (default) removes the hook. *)

val faults : 'a t -> Faults.t option
(** The attached fault plan, for its counters. *)

val count_kind : 'a t -> string -> unit
(** Attribute the current broadcast to a named category (e.g. ["lsa-order"],
    ["pds-dummy"]) for the network-load reports. *)

val kind_counts : 'a t -> (string * int) list
(** Category counts, sorted by name. *)
