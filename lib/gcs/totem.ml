open Detmt_sim
module Recorder = Detmt_obs.Recorder

type 'a subscriber = {
  id : int;
  mutable handler : 'a Message.t -> unit;
  mutable alive : bool;
  mutable last_delivery : float;
      (* FIFO floor: deliveries to one subscriber never reorder even if the
         latency function is not monotone *)
  mutable last_seq : int;
      (* highest sequence number handed to the application: the GCS delivers
         exactly once even when the transport duplicates a packet *)
  mutable watermark_floor : int;
      (* highest seq covered by an out-of-band [advance_watermark]: stale
         copies at or below it were replayed by the replication layer, so
         suppressing them is bookkeeping, not transport duplication *)
  mutable inbox : (float * 'a Message.t) list;
      (* (due, msg) in arrival-scheduling order, which is sequence order for
         first copies.  Delivery events drain every due entry in this order,
         so two deliveries landing at the same instant reach the handler in
         sequence order no matter which engine event runs first — the GCS
         contract survives tie-break flips (the explorer's reorder oracle
         exercises exactly those). *)
}

type batching = { max_batch : int; delay_ms : float }

type 'a t = {
  engine : Engine.t;
  latency : sender:int -> dest:int -> float;
  faults : Faults.t option;
  obs : Recorder.t;
  batching : batching option;
  mutable subscribers : 'a subscriber list; (* in subscription order *)
  mutable next_seq : int;
  mutable broadcasts : int;
  mutable deliveries : int;
  mutable suppressed_duplicates : int; (* true transport duplicates *)
  mutable watermark_suppressed : int;
      (* stale copies covered by [advance_watermark] (state transfer) *)
  mutable delivery_oracle :
    (seq:int -> sender:int -> dest:int -> planned_ms:float -> float) option;
      (* explorer hook: extra per-delivery latency, after faults *)
  mutable flush_oracle : (seq:int -> pending:int -> bool) option;
      (* explorer hook: force an early wire flush after a broadcast *)
  mutable pending : 'a Message.t list; (* batched, not yet on the wire;
                                          newest first *)
  mutable flush_epoch : int; (* invalidates stale delay timers *)
  mutable wire_batches : int;
  kinds : (string, int) Hashtbl.t;
}

let default_latency ~sender:_ ~dest:_ = 0.5

let create ?(latency = default_latency) ?faults ?(obs = Recorder.disabled)
    ?batching engine =
  (match batching with
  | Some b ->
    if b.max_batch < 1 then invalid_arg "Totem.create: max_batch < 1";
    if b.delay_ms < 0.0 then invalid_arg "Totem.create: delay_ms < 0"
  | None -> ());
  { engine; latency; faults; obs; batching; subscribers = []; next_seq = 0;
    broadcasts = 0; deliveries = 0; suppressed_duplicates = 0;
    watermark_suppressed = 0; delivery_oracle = None; flush_oracle = None;
    pending = []; flush_epoch = 0; wire_batches = 0;
    kinds = Hashtbl.create 8 }

let find t id = List.find_opt (fun s -> s.id = id) t.subscribers

let subscribe t ~id handler =
  if find t id <> None then
    invalid_arg (Printf.sprintf "Totem.subscribe: duplicate id %d" id);
  t.subscribers <-
    t.subscribers
    @ [ { id; handler; alive = true; last_delivery = 0.0; last_seq = -1;
          watermark_floor = -1; inbox = [] } ]

let set_delivery_oracle t oracle = t.delivery_oracle <- oracle

let set_flush_oracle t oracle = t.flush_oracle <- oracle

(* A rejoining member takes over its old slot: fresh handler, alive again,
   FIFO floor reset to now so stale floors cannot delay new traffic.  The
   exactly-once watermark is kept — everything broadcast while the member was
   dead was never scheduled for it and is the replication layer's job to
   replay out of band. *)
let resubscribe t ~id handler =
  match find t id with
  | None -> invalid_arg (Printf.sprintf "Totem.resubscribe: unknown id %d" id)
  | Some s ->
    s.handler <- handler;
    s.alive <- true;
    s.last_delivery <- Engine.now t.engine

(* Hand one message to the application, or suppress it (exactly-once
   watermark; transport duplicates vs replay-covered stale copies). *)
let deliver_one t sub (msg : 'a Message.t) =
  if msg.Message.seq > sub.last_seq then begin
    if Recorder.enabled t.obs then begin
      Recorder.incr t.obs "totem.deliveries";
      (* How far behind the newest broadcast this subscriber was just
         before the delivery closed the gap. *)
      Recorder.observe t.obs "totem.watermark_lag"
        (float_of_int (t.next_seq - 1 - sub.last_seq))
    end;
    sub.last_seq <- msg.Message.seq;
    sub.handler msg
  end
  else if msg.Message.seq <= sub.watermark_floor then begin
    (* Covered by an out-of-band state transfer: the replication layer
       already replayed this message, so suppressing the stale copy is
       watermark bookkeeping, not transport deduplication. *)
    t.watermark_suppressed <- t.watermark_suppressed + 1;
    if Recorder.enabled t.obs then
      Recorder.incr t.obs "totem.watermark_suppressed"
  end
  else begin
    t.suppressed_duplicates <- t.suppressed_duplicates + 1;
    if Recorder.enabled t.obs then Recorder.incr t.obs "totem.dedup_hits"
  end

(* Remove every due inbox entry; deliver them (in inbox = sequence order)
   only while the subscriber lives — a dead subscriber's due messages vanish
   exactly as the old per-message events did. *)
let drain t sub =
  let now = Engine.now t.engine in
  let due, rest = List.partition (fun (d, _) -> d <= now) sub.inbox in
  sub.inbox <- rest;
  if sub.alive then List.iter (fun (_, msg) -> deliver_one t sub msg) due

(* Put one sequenced message on the wire: schedule its per-subscriber
   deliveries (fault plans, FIFO floors, watermarks).  With batching, this
   runs at flush time rather than broadcast time, so arrival times are
   computed from the instant the batch actually hits the network. *)
let transmit t (msg : 'a Message.t) =
  let now = Engine.now t.engine in
  let seq = msg.Message.seq and sender = msg.Message.sender in
  let deliver_to sub =
    if sub.alive then begin
      t.deliveries <- t.deliveries + 1;
      let base = t.latency ~sender ~dest:sub.id in
      let arrival, dup_extra, retransmits =
        match t.faults with
        | None -> (now +. base, None, 0)
        | Some f ->
          let d =
            Faults.plan f ~seq ~sender ~dest:sub.id ~sent_at:now
              ~base_latency_ms:base
          in
          (d.Faults.arrival_ms, d.Faults.duplicate_extra_ms, d.Faults.retransmits)
      in
      if Recorder.enabled t.obs then begin
        Recorder.incr t.obs "totem.transmissions";
        if retransmits > 0 then
          Recorder.incr t.obs ~by:retransmits "totem.retransmits"
      end;
      (* Explorer hook: perturb this one delivery.  The FIFO floor below
         still applies, so per-subscriber sequence order — the GCS contract
         — survives any oracle. *)
      let arrival =
        match t.delivery_oracle with
        | None -> arrival
        | Some oracle ->
          arrival
          +. Float.max 0.0
               (oracle ~seq ~sender ~dest:sub.id ~planned_ms:arrival)
      in
      let time = Float.max arrival sub.last_delivery in
      sub.last_delivery <- time;
      sub.inbox <- sub.inbox @ [ (time, msg) ];
      Engine.schedule_at t.engine ~time (fun () -> drain t sub);
      (* The duplicate copy trails the (floored) first delivery, so it can
         never deliver out of order; the watermark suppresses it. *)
      Option.iter
        (fun extra ->
          let dup_time = time +. extra in
          sub.inbox <- sub.inbox @ [ (dup_time, msg) ];
          Engine.schedule_at t.engine ~time:dup_time (fun () -> drain t sub))
        dup_extra
    end
  in
  List.iter deliver_to t.subscribers

(* Flush the pending batch onto the wire in sequence order.  Bumping the
   epoch cancels the delay timer armed when the batch opened (a timer that
   fires after a size-triggered flush must not prematurely flush the batch
   that opened afterwards). *)
let flush_batch t =
  match List.rev t.pending with
  | [] -> ()
  | batch ->
    t.pending <- [];
    t.flush_epoch <- t.flush_epoch + 1;
    t.wire_batches <- t.wire_batches + 1;
    if Recorder.enabled t.obs then begin
      Recorder.incr t.obs "totem.wire_batches";
      Recorder.observe t.obs "totem.batch_size"
        (float_of_int (List.length batch))
    end;
    List.iter (transmit t) batch

(* Batch transmission is the profiler's Flush phase: the cost of turning a
   pending batch into per-subscriber deliveries. *)
let flush t =
  match Recorder.profiler t.obs with
  | None -> flush_batch t
  | Some p ->
    Detmt_obs.Profile.phase_begin p Detmt_obs.Profile.Flush;
    flush_batch t;
    Detmt_obs.Profile.phase_end p Detmt_obs.Profile.Flush

let broadcast t ~sender payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.broadcasts <- t.broadcasts + 1;
  if Recorder.enabled t.obs then Recorder.incr t.obs "totem.broadcasts";
  let msg = { Message.seq; sender; sent_at = Engine.now t.engine; payload } in
  (match t.batching with
  | None -> transmit t msg
  | Some b ->
    t.pending <- msg :: t.pending;
    let held = List.length t.pending in
    let forced =
      match t.flush_oracle with
      | Some oracle -> oracle ~seq ~pending:held
      | None -> false
    in
    if held >= b.max_batch || forced then flush t
    else if held = 1 then begin
      (* First message of a fresh batch arms the flush timer. *)
      let epoch = t.flush_epoch in
      Engine.schedule t.engine ~delay:b.delay_ms (fun () ->
          if t.flush_epoch = epoch then flush t)
    end);
  seq

(* After an out-of-band state transfer the replication layer owns every
   message up to [seq]; stale in-flight copies (retransmits, duplicates,
   partition stragglers addressed to the old incarnation) must not reach the
   new handler. *)
let advance_watermark t ~id ~seq =
  match find t id with
  | Some s ->
    if seq > s.last_seq then s.last_seq <- seq;
    if seq > s.watermark_floor then s.watermark_floor <- seq
  | None ->
    invalid_arg (Printf.sprintf "Totem.advance_watermark: unknown id %d" id)

let set_alive t id alive =
  match find t id with
  | Some s -> s.alive <- alive
  | None -> invalid_arg (Printf.sprintf "Totem.set_alive: unknown id %d" id)

let is_alive t id =
  match find t id with Some s -> s.alive | None -> false

let broadcasts t = t.broadcasts

let deliveries t = t.deliveries

let batching t = t.batching

let wire_batches t = t.wire_batches

let pending_batched t = List.length t.pending

let suppressed_duplicates t = t.suppressed_duplicates

let watermark_suppressed t = t.watermark_suppressed

let faults t = t.faults

let count_kind t kind =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.kinds kind) in
  Hashtbl.replace t.kinds kind (n + 1);
  if Recorder.enabled t.obs then Recorder.incr t.obs ("totem.msg." ^ kind)

let kind_counts t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.kinds []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
