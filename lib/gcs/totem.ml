open Detmt_sim
module Recorder = Detmt_obs.Recorder

type 'a subscriber = {
  id : int;
  mutable handler : 'a Message.t -> unit;
  mutable alive : bool;
  mutable last_delivery : float;
      (* FIFO floor: deliveries to one subscriber never reorder even if the
         latency function is not monotone *)
  mutable last_seq : int;
      (* highest sequence number handed to the application: the GCS delivers
         exactly once even when the transport duplicates a packet *)
  mutable watermark_floor : int;
      (* highest seq covered by an out-of-band [advance_watermark]: stale
         copies at or below it were replayed by the replication layer, so
         suppressing them is bookkeeping, not transport duplication *)
  mutable ib_due : float array; (* inbox ring: due times ... *)
  mutable ib_msg : 'a Message.t option array; (* ... and messages *)
  mutable ib_head : int;
  mutable ib_len : int;
      (* (due, msg) in arrival-scheduling order, which is sequence order for
         first copies.  Delivery events drain every due entry in this order,
         so two deliveries landing at the same instant reach the handler in
         sequence order no matter which engine event runs first — the GCS
         contract survives tie-break flips (the explorer's reorder oracle
         exercises exactly those). *)
  mutable dt : float array; (* armed drain instants, sorted ascending *)
  mutable dt_len : int;
      (* one drain event per (subscriber, instant): a second message due at
         an already-armed instant rides the armed event instead of adding a
         no-op — the old per-message events delivered nothing past the first
         at each instant, so fusing them changes no delivery *)
}

type batching = { max_batch : int; delay_ms : float }

type 'a t = {
  engine : Engine.t;
  latency : sender:int -> dest:int -> float;
  faults : Faults.t option;
  obs : Recorder.t;
  batching : batching option;
  mutable subscribers : 'a subscriber list; (* in subscription order *)
  mutable by_id : 'a subscriber option array; (* dense id -> subscriber *)
  mutable next_seq : int;
  mutable broadcasts : int;
  mutable deliveries : int;
  mutable suppressed_duplicates : int; (* true transport duplicates *)
  mutable watermark_suppressed : int;
      (* stale copies covered by [advance_watermark] (state transfer) *)
  mutable delivery_oracle :
    (seq:int -> sender:int -> dest:int -> planned_ms:float -> float) option;
      (* explorer hook: extra per-delivery latency, after faults *)
  mutable flush_oracle : (seq:int -> pending:int -> bool) option;
      (* explorer hook: force an early wire flush after a broadcast *)
  mutable pending : 'a Message.t list; (* batched, not yet on the wire;
                                          newest first *)
  mutable flush_epoch : int; (* invalidates stale delay timers *)
  mutable wire_batches : int;
  kinds : (string, int) Hashtbl.t;
  mutable drain_h : Engine.handler_id; (* typed drain event, arg = sub id *)
  mutable flush_h : Engine.handler_id; (* typed flush timer, arg = epoch *)
  mutable sc_msg : 'a Message.t option array;
      (* drain scratch: due messages are moved here before delivery so
         handlers appending to the inbox never race the compaction.  Shared
         across subscribers — drains only ever run from engine events, never
         reentrantly. *)
}

let default_latency ~sender:_ ~dest:_ = 0.5

let find t id =
  if id < 0 || id >= Array.length t.by_id then None else t.by_id.(id)

let sub_by_id t id =
  match find t id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Totem: unknown subscriber %d" id)

let set_delivery_oracle t oracle = t.delivery_oracle <- oracle

let set_flush_oracle t oracle = t.flush_oracle <- oracle

(* Hand one message to the application, or suppress it (exactly-once
   watermark; transport duplicates vs replay-covered stale copies). *)
let deliver_one t sub (msg : 'a Message.t) =
  if msg.Message.seq > sub.last_seq then begin
    if Recorder.enabled t.obs then begin
      Recorder.incr t.obs "totem.deliveries";
      (* How far behind the newest broadcast this subscriber was just
         before the delivery closed the gap. *)
      Recorder.observe t.obs "totem.watermark_lag"
        (float_of_int (t.next_seq - 1 - sub.last_seq))
    end;
    sub.last_seq <- msg.Message.seq;
    sub.handler msg
  end
  else if msg.Message.seq <= sub.watermark_floor then begin
    (* Covered by an out-of-band state transfer: the replication layer
       already replayed this message, so suppressing the stale copy is
       watermark bookkeeping, not transport deduplication. *)
    t.watermark_suppressed <- t.watermark_suppressed + 1;
    if Recorder.enabled t.obs then
      Recorder.incr t.obs "totem.watermark_suppressed"
  end
  else begin
    t.suppressed_duplicates <- t.suppressed_duplicates + 1;
    if Recorder.enabled t.obs then Recorder.incr t.obs "totem.dedup_hits"
  end

let ib_append sub ~due msg =
  let cap = Array.length sub.ib_due in
  if sub.ib_len = cap then begin
    let ncap = max 8 (2 * cap) in
    let d = Array.make ncap 0.0 and m = Array.make ncap None in
    for j = 0 to sub.ib_len - 1 do
      let idx = (sub.ib_head + j) land (cap - 1) in
      d.(j) <- sub.ib_due.(idx);
      m.(j) <- sub.ib_msg.(idx)
    done;
    sub.ib_due <- d;
    sub.ib_msg <- m;
    sub.ib_head <- 0
  end;
  let mask = Array.length sub.ib_due - 1 in
  let idx = (sub.ib_head + sub.ib_len) land mask in
  sub.ib_due.(idx) <- due;
  sub.ib_msg.(idx) <- Some msg;
  sub.ib_len <- sub.ib_len + 1

(* Schedule a drain of [sub] at [time] unless one is already armed for
   exactly that instant (fused same-instant delivery).  A drain pending at
   a different instant never covers this one: it would fire at a different
   virtual time and change when the message reaches the application. *)
let arm_drain t sub ~time =
  let n = sub.dt_len in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if sub.dt.(mid) < time then lo := mid + 1 else hi := mid
  done;
  let pos = !lo in
  if not (pos < n && sub.dt.(pos) = time) then begin
    if n = Array.length sub.dt then begin
      let a = Array.make (max 4 (2 * n)) infinity in
      Array.blit sub.dt 0 a 0 n;
      sub.dt <- a
    end;
    Array.blit sub.dt pos sub.dt (pos + 1) (n - pos);
    sub.dt.(pos) <- time;
    sub.dt_len <- n + 1;
    Engine.post_at t.engine ~time t.drain_h sub.id
  end

(* Remove every due inbox entry; deliver them (in inbox = sequence order)
   only while the subscriber lives — a dead subscriber's due messages vanish
   exactly as per-message events would.  Due entries move to the scratch
   first and the survivors compact in place, so handlers that broadcast
   (appending to this very inbox) during delivery see a consistent ring. *)
let drain t sub =
  let now = Engine.now t.engine in
  (* Retire the armed-instant marks this event (and any earlier one at the
     same instant) covers, so a later same-instant message arms afresh. *)
  let r = ref 0 in
  while !r < sub.dt_len && sub.dt.(!r) <= now do incr r done;
  if !r > 0 then begin
    Array.blit sub.dt !r sub.dt 0 (sub.dt_len - !r);
    sub.dt_len <- sub.dt_len - !r
  end;
  let len = sub.ib_len in
  if len > 0 then begin
    if Array.length t.sc_msg < len then
      t.sc_msg <- Array.make (max 8 (2 * len)) None;
    let mask = Array.length sub.ib_due - 1 in
    let ndue = ref 0 and w = ref 0 in
    for j = 0 to len - 1 do
      let idx = (sub.ib_head + j) land mask in
      if sub.ib_due.(idx) <= now then begin
        t.sc_msg.(!ndue) <- sub.ib_msg.(idx);
        incr ndue
      end
      else begin
        let widx = (sub.ib_head + !w) land mask in
        sub.ib_due.(widx) <- sub.ib_due.(idx);
        sub.ib_msg.(widx) <- sub.ib_msg.(idx);
        incr w
      end
    done;
    (* Vacated tail slots drop their references so delivered messages are
       collectable immediately. *)
    for j = !w to len - 1 do
      sub.ib_msg.((sub.ib_head + j) land mask) <- None
    done;
    sub.ib_len <- !w;
    let n = !ndue in
    if sub.alive then
      for k = 0 to n - 1 do
        match t.sc_msg.(k) with
        | Some msg -> deliver_one t sub msg
        | None -> ()
      done;
    for k = 0 to n - 1 do
      t.sc_msg.(k) <- None
    done
  end

(* Put one sequenced message on the wire: schedule its per-subscriber
   deliveries (fault plans, FIFO floors, watermarks).  With batching, this
   runs at flush time rather than broadcast time, so arrival times are
   computed from the instant the batch actually hits the network. *)
let transmit t (msg : 'a Message.t) =
  let now = Engine.now t.engine in
  let seq = msg.Message.seq and sender = msg.Message.sender in
  let deliver_to sub =
    if sub.alive then begin
      t.deliveries <- t.deliveries + 1;
      let base = t.latency ~sender ~dest:sub.id in
      let arrival, dup_extra, retransmits =
        match t.faults with
        | None -> (now +. base, None, 0)
        | Some f ->
          let d =
            Faults.plan f ~seq ~sender ~dest:sub.id ~sent_at:now
              ~base_latency_ms:base
          in
          (d.Faults.arrival_ms, d.Faults.duplicate_extra_ms, d.Faults.retransmits)
      in
      if Recorder.enabled t.obs then begin
        Recorder.incr t.obs "totem.transmissions";
        if retransmits > 0 then
          Recorder.incr t.obs ~by:retransmits "totem.retransmits"
      end;
      (* Explorer hook: perturb this one delivery.  The FIFO floor below
         still applies, so per-subscriber sequence order — the GCS contract
         — survives any oracle. *)
      let arrival =
        match t.delivery_oracle with
        | None -> arrival
        | Some oracle ->
          arrival
          +. Float.max 0.0
               (oracle ~seq ~sender ~dest:sub.id ~planned_ms:arrival)
      in
      let time = Float.max arrival sub.last_delivery in
      sub.last_delivery <- time;
      ib_append sub ~due:time msg;
      arm_drain t sub ~time;
      (* The duplicate copy trails the (floored) first delivery, so it can
         never deliver out of order; the watermark suppresses it. *)
      Option.iter
        (fun extra ->
          let dup_time = time +. extra in
          ib_append sub ~due:dup_time msg;
          arm_drain t sub ~time:dup_time)
        dup_extra
    end
  in
  List.iter deliver_to t.subscribers

(* Flush the pending batch onto the wire in sequence order.  Bumping the
   epoch cancels the delay timer armed when the batch opened (a timer that
   fires after a size-triggered flush must not prematurely flush the batch
   that opened afterwards). *)
let flush_batch t =
  match List.rev t.pending with
  | [] -> ()
  | batch ->
    t.pending <- [];
    t.flush_epoch <- t.flush_epoch + 1;
    t.wire_batches <- t.wire_batches + 1;
    if Recorder.enabled t.obs then begin
      Recorder.incr t.obs "totem.wire_batches";
      Recorder.observe t.obs "totem.batch_size"
        (float_of_int (List.length batch))
    end;
    List.iter (transmit t) batch

(* Batch transmission is the profiler's Flush phase: the cost of turning a
   pending batch into per-subscriber deliveries. *)
let flush t =
  match Recorder.profiler t.obs with
  | None -> flush_batch t
  | Some p ->
    Detmt_obs.Profile.phase_begin p Detmt_obs.Profile.Flush;
    flush_batch t;
    Detmt_obs.Profile.phase_end p Detmt_obs.Profile.Flush

let create ?(latency = default_latency) ?faults ?(obs = Recorder.disabled)
    ?batching engine =
  (match batching with
  | Some b ->
    if b.max_batch < 1 then invalid_arg "Totem.create: max_batch < 1";
    if b.delay_ms < 0.0 then invalid_arg "Totem.create: delay_ms < 0"
  | None -> ());
  let t =
    { engine; latency; faults; obs; batching; subscribers = []; by_id = [||];
      next_seq = 0; broadcasts = 0; deliveries = 0; suppressed_duplicates = 0;
      watermark_suppressed = 0; delivery_oracle = None; flush_oracle = None;
      pending = []; flush_epoch = 0; wire_batches = 0;
      kinds = Hashtbl.create 8; drain_h = 0; flush_h = 0; sc_msg = [||] }
  in
  t.drain_h <- Engine.register_handler engine (fun id -> drain t (sub_by_id t id));
  t.flush_h <-
    Engine.register_handler engine (fun epoch ->
        if t.flush_epoch = epoch then flush t);
  t

let subscribe t ~id handler =
  if id < 0 then invalid_arg "Totem.subscribe: negative id";
  if find t id <> None then
    invalid_arg (Printf.sprintf "Totem.subscribe: duplicate id %d" id);
  if id >= Array.length t.by_id then begin
    let by_id = Array.make (max 8 (2 * (id + 1))) None in
    Array.blit t.by_id 0 by_id 0 (Array.length t.by_id);
    t.by_id <- by_id
  end;
  let sub =
    { id; handler; alive = true; last_delivery = 0.0; last_seq = -1;
      watermark_floor = -1; ib_due = [||]; ib_msg = [||]; ib_head = 0;
      ib_len = 0; dt = [||]; dt_len = 0 }
  in
  t.by_id.(id) <- Some sub;
  t.subscribers <- t.subscribers @ [ sub ]

(* A rejoining member takes over its old slot: fresh handler, alive again,
   FIFO floor reset to now so stale floors cannot delay new traffic.  The
   exactly-once watermark is kept — everything broadcast while the member was
   dead was never scheduled for it and is the replication layer's job to
   replay out of band. *)
let resubscribe t ~id handler =
  match find t id with
  | None -> invalid_arg (Printf.sprintf "Totem.resubscribe: unknown id %d" id)
  | Some s ->
    s.handler <- handler;
    s.alive <- true;
    s.last_delivery <- Engine.now t.engine

let broadcast t ~sender payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.broadcasts <- t.broadcasts + 1;
  if Recorder.enabled t.obs then Recorder.incr t.obs "totem.broadcasts";
  let msg = { Message.seq; sender; sent_at = Engine.now t.engine; payload } in
  (match t.batching with
  | None -> transmit t msg
  | Some b ->
    t.pending <- msg :: t.pending;
    let held = List.length t.pending in
    let forced =
      match t.flush_oracle with
      | Some oracle -> oracle ~seq ~pending:held
      | None -> false
    in
    if held >= b.max_batch || forced then flush t
    else if held = 1 then
      (* First message of a fresh batch arms the flush timer; the epoch
         argument invalidates it if the batch flushes early. *)
      Engine.post t.engine ~delay:b.delay_ms t.flush_h t.flush_epoch);
  seq

(* After an out-of-band state transfer the replication layer owns every
   message up to [seq]; stale in-flight copies (retransmits, duplicates,
   partition stragglers addressed to the old incarnation) must not reach the
   new handler. *)
let advance_watermark t ~id ~seq =
  match find t id with
  | Some s ->
    if seq > s.last_seq then s.last_seq <- seq;
    if seq > s.watermark_floor then s.watermark_floor <- seq
  | None ->
    invalid_arg (Printf.sprintf "Totem.advance_watermark: unknown id %d" id)

let set_alive t id alive =
  match find t id with
  | Some s -> s.alive <- alive
  | None -> invalid_arg (Printf.sprintf "Totem.set_alive: unknown id %d" id)

let is_alive t id =
  match find t id with Some s -> s.alive | None -> false

let broadcasts t = t.broadcasts

let deliveries t = t.deliveries

let batching t = t.batching

let wire_batches t = t.wire_batches

let pending_batched t = List.length t.pending

let suppressed_duplicates t = t.suppressed_duplicates

let watermark_suppressed t = t.watermark_suppressed

let faults t = t.faults

let count_kind t kind =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.kinds kind) in
  Hashtbl.replace t.kinds kind (n + 1);
  if Recorder.enabled t.obs then Recorder.incr t.obs ("totem.msg." ^ kind)

let kind_counts t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.kinds []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
