(** Duplicate-request suppression.

    "Additional replication logic that is transparent to the client ensures a
    unique message identifier for each client request enabling replicas to
    ignore duplicated requests."  Identifiers are [(client_id, request_no)]
    pairs. *)

type t

val create : unit -> t

val mark : t -> client:int -> request:int -> bool
(** [mark t ~client ~request] returns [true] if the identifier was already
    seen (a duplicate) and records it otherwise. *)

val seen : t -> client:int -> request:int -> bool

val count : t -> int
(** Distinct identifiers recorded. *)

val duplicates : t -> int
(** Number of duplicate deliveries suppressed. *)

val copy : t -> t
(** A fresh table with the same seen-set and a zeroed duplicate counter —
    state transfer to a rejoining replica. *)

val merge : into:t -> t -> unit
(** [merge ~into t] unions [t]'s seen-set into [into] (duplicate counters
    untouched) — a shard merge folds the retiring group's ledger into the
    survivor so re-routed retries stay suppressed. *)
