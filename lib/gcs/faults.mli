(** Deterministic network-fault injection.

    A seeded plan attached to {!Totem} that models the unfriendly transport
    the GCS hides from the application: per-link latency jitter, message loss
    repaired by ack/retransmit timers (delivery is delayed, never dropped —
    the total order survives), duplicate point-to-point deliveries
    (suppressed by the GCS sequence numbers), and timed link partitions that
    heal.

    Every fault outcome is a pure function of [(seed, seq, sender, dest)], so
    a run replays bit-identically regardless of event-execution order, and
    the same seed yields the same network weather in every run. *)

type partition = {
  src : int option;  (** sending endpoint; [None] matches every sender *)
  dst : int option;  (** receiving endpoint; [None] matches every dest *)
  from_ms : float;   (** cut begins (virtual ms) *)
  until_ms : float;  (** cut heals *)
}

type spec = {
  seed : int64;
  jitter_ms : float;  (** extra uniform per-hop latency in [0, jitter_ms) *)
  loss_prob : float;  (** per-transmission loss probability, in [0, 1) *)
  rto_ms : float;  (** retransmit timeout added per lost transmission *)
  max_retransmits : int;  (** cap; the attempt after the cap always lands *)
  dup_prob : float;  (** probability of a duplicate transport delivery *)
  dup_extra_ms : float;  (** duplicate trails the original by up to this *)
  partitions : partition list;
}

val none : spec
(** A fault-free plan: zero jitter, loss and duplication, no partitions. *)

type t

val create : spec -> t
(** @raise Invalid_argument on out-of-range probabilities or timers. *)

val spec : t -> spec

type delivery = {
  arrival_ms : float;  (** when the (first) copy arrives *)
  duplicate_extra_ms : float option;
      (** a duplicate copy trails by this much, if any *)
  retransmits : int;  (** lost transmissions repaired by the timer *)
}

val plan :
  t ->
  seq:int ->
  sender:int ->
  dest:int ->
  sent_at:float ->
  base_latency_ms:float ->
  delivery
(** Decide the fate of one point-to-point transmission. *)

(** {2 Counters} *)

val transmissions : t -> int

val losses : t -> int
(** Transmissions repaired by a retransmit. *)

val duplicates_injected : t -> int

val partition_holds : t -> int
(** Transmissions delayed behind a partition heal. *)

val pp_stats : Format.formatter -> t -> unit
