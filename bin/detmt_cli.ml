(* detmt-cli: command-line driver for the deterministic-multithreading
   experiments.

   Every figure of the paper is a subcommand; [run] executes a single
   configuration with full control over the parameters, and [schedulers]
   lists the available decision modules.  All subcommands share the flag
   vocabulary of {!Cli_args}: [--scheduler], [--workload], [--seed],
   [--shards], [-o]. *)

open Cmdliner

let print_table t = Format.printf "%a@." Detmt.Table.pp t

let csv_flag = Cli_args.csv

let emit csv t =
  if csv then print_string (Detmt.Table.to_csv t) else print_table t

(* ------------------------------ run --------------------------------- *)

let scheduler_arg = Cli_args.scheduler

let clients_arg = Cli_args.clients

let requests_arg = Cli_args.requests

let replicas_arg = Cli_args.replicas

let seed_arg = Cli_args.seed

let workers_arg = Cli_args.workers

let workload_arg = Cli_args.workload

let latency_arg = Cli_args.latency

let file_arg = Cli_args.file

let load_dml path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  match Detmt.Dml.parse src with
  | Ok cls -> cls
  | Error msg ->
    Format.eprintf "%s: %s@." path msg;
    exit 2

let resolve_workload = function
  | "figure1" ->
    ( Detmt.Figure1.cls Detmt.Figure1.default,
      Detmt.Figure1.gen Detmt.Figure1.default )
  | "compute-heavy" ->
    ( Detmt.Figure1.cls Detmt.Figure1.compute_heavy,
      Detmt.Figure1.gen Detmt.Figure1.compute_heavy )
  | "disjoint" ->
    (Detmt.Disjoint.cls Detmt.Disjoint.default, Detmt.Disjoint.gen)
  | "tail" ->
    ( Detmt.Tail_compute.cls Detmt.Tail_compute.default,
      Detmt.Tail_compute.gen Detmt.Tail_compute.default )
  | "prodcons" ->
    (Detmt.Prodcons.cls Detmt.Prodcons.default, Detmt.Prodcons.gen)
  | "sharded" ->
    ( Detmt.Sharded.cls Detmt.Sharded.default,
      Detmt.Sharded.gen Detmt.Sharded.default )
  | "hotspot" ->
    ( Detmt.Hotspot.cls Detmt.Hotspot.default,
      Detmt.Hotspot.gen Detmt.Hotspot.default )
  | other -> failwith (Printf.sprintf "unknown workload %S" other)

let histogram_flag =
  Arg.(value & flag
       & info [ "histogram" ]
           ~doc:"Also print a response-time histogram.")

let run_cmd =
  let run scheduler workers clients requests replicas seed workload latency
      histogram =
    let cls, gen = resolve_workload workload in
    let params =
      { Detmt.Active.default_params with
        scheduler; workers; replicas; net_latency_ms = latency }
    in
    let result =
      Detmt.Experiment.run_workload ~seed:(Int64.of_int seed) ~params
        ~requests_per_client:requests ~scheduler ~clients ~cls ~gen ()
    in
    Format.printf "scheduler:    %s@." result.Detmt.Experiment.scheduler;
    Format.printf "workload:     %s@." workload;
    Format.printf "clients:      %d x %d requests@." clients requests;
    Format.printf "replies:      %d@." result.replies;
    Format.printf "mean:         %.2f ms@." result.mean_response_ms;
    Format.printf "p95:          %.2f ms@." result.p95_response_ms;
    Format.printf "throughput:   %.1f req/s@." result.throughput_per_s;
    Format.printf "makespan:     %.1f virtual ms@." result.duration_ms;
    Format.printf "broadcasts:   %d (%s)@." result.broadcasts
      (String.concat ", "
         (List.map
            (fun (k, v) -> Printf.sprintf "%s=%d" k v)
            result.message_kinds));
    Format.printf "cpu busy:     %.1f ms (replica 0)@." result.cpu_busy_ms;
    Format.printf "consistent:   %b@." result.consistent;
    if histogram then begin
      (* Re-run with the same seed to collect the samples (run_workload
         reports a summary only); identical by determinism. *)
      let engine = Detmt.Engine.create () in
      let system = Detmt.Active.create ~engine ~cls ~params () in
      Detmt.Client.run_clients ~engine ~system ~clients
        ~requests_per_client:requests ~gen ~seed:(Int64.of_int seed) ();
      let times = Detmt.Active.response_times system in
      let hi = Detmt.Summary.max times +. 1e-6 in
      let h = Detmt.Histogram.create ~lo:0.0 ~hi ~buckets:16 in
      List.iter
        (fun t -> Detmt.Histogram.add h t)
        (List.init (Detmt.Summary.count times) (fun i ->
             Detmt.Summary.quantile times
               (float_of_int i /. float_of_int (Detmt.Summary.count times))));
      Format.printf "@.response-time histogram (ms):@.%a" Detmt.Histogram.pp h
    end
  in
  let term =
    Term.(
      const run $ scheduler_arg $ workers_arg $ clients_arg $ requests_arg
      $ replicas_arg $ seed_arg $ workload_arg $ latency_arg $ histogram_flag)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under one scheduler and report.")
    term

(* --------------------------- experiments ---------------------------- *)

let table_cmd name doc make =
  let term = Term.(const (fun csv -> emit csv (make ())) $ csv_flag) in
  Cmd.v (Cmd.info name ~doc) term

let fig1_cmd =
  let run csv chart =
    let table, series = Detmt.Experiment.figure1 () in
    emit csv table;
    if chart then Detmt.Series.chart Format.std_formatter series
  in
  let chart_flag =
    Arg.(value & flag & info [ "chart" ] ~doc:"Also draw the ASCII chart.")
  in
  Cmd.v
    (Cmd.info "fig1"
       ~doc:"Figure 1: response time vs clients for all five algorithms.")
    Term.(const run $ csv_flag $ chart_flag)

let fig4_cmd =
  Cmd.v
    (Cmd.info "fig4" ~doc:"Figure 4: the code transformation example.")
    Term.(const (fun () -> print_string (Detmt.Experiment.figure4 ())) $ const ())

let schedulers_cmd =
  let show () =
    List.iter
      (fun s ->
        Format.printf "%-9s %s%s@." s.Detmt.Registry.name
          s.Detmt.Registry.description
          (if s.Detmt.Registry.needs_prediction then
             "  [needs predictive transform]"
           else ""))
      Detmt.Registry.all
  in
  Cmd.v
    (Cmd.info "schedulers" ~doc:"List the available decision modules.")
    Term.(const show $ const ())

(* Machine-checkable registry listing: one row per decision module with its
   determinism and prediction flags.  CI greps this to assert the registry
   is complete. *)
let sched_cmd =
  let show () =
    Format.printf "%-9s %-13s %-10s %s@." "NAME" "DETERMINISTIC"
      "PREDICTION" "DESCRIPTION";
    List.iter
      (fun s ->
        Format.printf "%-9s %-13s %-10s %s@." s.Detmt.Registry.name
          (if s.Detmt.Registry.deterministic then "yes" else "no")
          (if s.Detmt.Registry.needs_prediction then "yes" else "no")
          s.Detmt.Registry.description)
      Detmt.Registry.all
  in
  Cmd.v
    (Cmd.info "sched"
       ~doc:
         "List every registered scheduler with its determinism and \
          prediction flags.")
    Term.(const show $ const ())

let transform_cmd =
  let show workload file predictive =
    let cls =
      match file with
      | Some path -> load_dml path
      | None -> fst (resolve_workload workload)
    in
    let transformed =
      if predictive then fst (Detmt.Transform.predictive cls)
      else Detmt.Transform.basic cls
    in
    Format.printf "%a@." Detmt.Pretty.class_def transformed
  in
  let predictive_flag =
    Arg.(value & flag
         & info [ "predictive" ]
             ~doc:"Apply the predictive transformation (with lock \
                   announcements) instead of the basic one.")
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Print a workload class after the scheduler-call transformation.")
    Term.(const show $ workload_arg $ file_arg $ predictive_flag)

let timeline_cmd =
  let show scheduler workload clients =
    let workload_tag =
      match workload with
      | "disjoint" -> `Disjoint
      | "tail" | _ -> `Tail
    in
    let tl =
      Detmt.Experiment.timeline ~scheduler ~workload:workload_tag ~clients ()
    in
    Detmt.Timeline.render Format.std_formatter tl
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Draw the per-thread schedule of a small run (the visual form of \
          figures 2 and 3).")
    Term.(const show $ scheduler_arg $ workload_arg $ clients_arg)

let analyse_cmd =
  let show workload file =
    let cls =
      match file with
      | Some path -> load_dml path
      | None -> fst (resolve_workload workload)
    in
    let _, summary = Detmt.Transform.predictive cls in
    Format.printf "prediction summary of %s:@."
      summary.Detmt.Predict.class_name;
    List.iter
      (fun (m : Detmt.Predict.method_summary) ->
        Format.printf "  %s:%s@." m.mname
          (if m.fallback then
             Printf.sprintf " FALLBACK (%s)"
               (Option.value ~default:"?" m.fallback_reason)
           else "");
        List.iter
          (fun (i : Detmt.Predict.sid_info) ->
            Format.printf "    sid %-3d %-18s %s%s@." i.sid
              (Format.asprintf "%a" Detmt.Pretty.sync_param i.param)
              (Detmt.Param_class.show i.classification)
              (match i.in_loops with
              | [] -> ""
              | l ->
                "  [in loops "
                ^ String.concat "," (List.map string_of_int l)
                ^ "]"))
          m.sids;
        List.iter
          (fun (l : Detmt.Predict.loop_info) ->
            Format.printf "    loop %-2d sids={%s} %s%s@." l.lid
              (String.concat "," (List.map string_of_int l.sids))
              (if l.changing then "changing" else "fixed")
              (if l.opaque then " (opaque call)" else ""))
          m.loops)
      summary.Detmt.Predict.methods;
    Detmt.Interference.pp_report Format.std_formatter
      (Detmt.Interference.analyse cls)
  in
  Cmd.v
    (Cmd.info "analyse"
       ~doc:
         "Print the static lock analysis of a workload: prediction summary \
          and interference report.")
    Term.(const show $ workload_arg $ file_arg)

(* ------------------------- flight recorder -------------------------- *)

let output_arg = Cli_args.output

let write_out out s =
  match out with
  | None -> print_string s
  | Some path ->
    let oc = open_out path in
    output_string oc s;
    close_out oc;
    Format.eprintf "wrote %s@." path

(* Run one configuration with the flight recorder on.  Determinism contract:
   this is the exact run [detmt-cli run] performs with the same flags — the
   recorder is read-only.  [shards > 1] records the sharded system instead
   (shard 0's metric names are the unsharded ones, so the single-shard
   recording is unchanged). *)
let record_run ?obs ~scheduler ~clients ~requests ~replicas ~seed ~workload
    ~latency ~shards () =
  let cls, gen = resolve_workload workload in
  let params =
    { Detmt.Active.default_params with
      scheduler; replicas; net_latency_ms = latency }
  in
  let obs = match obs with Some o -> o | None -> Detmt.Recorder.create () in
  if shards <= 1 then
    ignore
      (Detmt.Experiment.run_workload ~seed:(Int64.of_int seed) ~params
         ~requests_per_client:requests ~obs ~scheduler ~clients ~cls ~gen ())
  else begin
    let engine = Detmt.Engine.create () in
    let system =
      Detmt.Shard.create ~obs ~engine ~cls
        ~params:{ Detmt.Shard.shards; base = params } ()
    in
    Detmt.Shard.run_clients system ~clients ~requests_per_client:requests
      ~gen ~seed:(Int64.of_int seed) ()
  end;
  obs

let trace_shards_arg =
  Cli_args.shards ~default:1
    ~doc:
      "Record the sharded system with this many groups instead of the \
       single-group one (1 = the unsharded path)."

let trace_format_arg =
  let doc =
    "Export format: breakdown (per-request latency table), chrome \
     (trace-event JSON for Perfetto / chrome://tracing), audit (scheduler \
     decision log), critical (dominant latency component per request, \
     aggregated overall / per shard / per epoch)."
  in
  Arg.(value & opt string "breakdown" & info [ "format" ] ~docv:"FMT" ~doc)

let trace_cmd =
  let run scheduler clients requests replicas seed workload latency shards
      format csv out =
    let obs =
      record_run ~scheduler ~clients ~requests ~replicas ~seed ~workload
        ~latency ~shards ()
    in
    match format with
    | "breakdown" ->
      let title =
        Printf.sprintf
          "Per-request latency breakdown (ms): %s on %s, %d clients x %d \
           requests"
          scheduler workload clients requests
      in
      let t = Detmt.Recorder.breakdown_table ~title obs in
      (match out with
      | None -> emit csv t
      | Some _ ->
        write_out out
          (if csv then Detmt.Table.to_csv t
           else Format.asprintf "%a@." Detmt.Table.pp t))
    | "chrome" -> write_out out (Detmt.Chrome.to_string obs)
    | "critical" ->
      let report = Detmt.Critical_path.analyse ~replicas obs in
      let title =
        Printf.sprintf
          "Critical path: %s on %s, %d clients x %d requests" scheduler
          workload clients requests
      in
      let t = Detmt.Critical_path.table ~title report in
      (match out with
      | None -> emit csv t
      | Some _ ->
        write_out out
          (if csv then Detmt.Table.to_csv t
           else Format.asprintf "%a@." Detmt.Table.pp t))
    | "audit" ->
      let buf = Buffer.create 4096 in
      let ppf = Format.formatter_of_buffer buf in
      List.iter
        (fun e -> Format.fprintf ppf "%a@." Detmt.Audit.pp_entry e)
        (Detmt.Recorder.audit_entries obs);
      Format.pp_print_flush ppf ();
      write_out out (Buffer.contents buf)
    | other ->
      Format.eprintf "unknown trace format %S (breakdown, chrome, audit)@."
        other;
      exit 2
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one workload with the flight recorder on and export the \
          request spans: a per-request latency breakdown whose columns sum \
          to the measured response time, Chrome trace-event JSON, or the \
          scheduler decision audit log.")
    Term.(
      const run $ scheduler_arg $ clients_arg $ requests_arg $ replicas_arg
      $ seed_arg $ workload_arg $ latency_arg $ trace_shards_arg
      $ trace_format_arg $ csv_flag $ output_arg)

(* Render the windowed time series as extra CSV-safe table rows: one row
   per track with the per-window headline values joined by commas — label
   cells containing commas exercise the CSV quoting path. *)
let series_table ~title ts =
  let t =
    Detmt.Table.create ~title
      ~columns:[ "series"; "kind"; "windows"; "peak"; "values" ]
  in
  List.iter
    (fun name ->
      match Detmt.Timeseries.kind ts name with
      | None -> ()
      | Some kind ->
        let wins = Detmt.Timeseries.windows ts name in
        Detmt.Table.add_row t
          [ name;
            (match kind with
            | Detmt.Timeseries.Rate -> "rate"
            | Detmt.Timeseries.Sample -> "sample");
            string_of_int (List.length wins);
            Printf.sprintf "%g" (Detmt.Timeseries.peak ts name);
            String.concat ","
              (List.map
                 (fun w ->
                   Printf.sprintf "%g" (Detmt.Timeseries.window_value kind w))
                 wins) ])
    (Detmt.Timeseries.names ts);
  t

let metrics_cmd =
  let run scheduler clients requests replicas seed workload latency shards
      csv json format series out =
    let obs =
      record_run ~scheduler ~clients ~requests ~replicas ~seed ~workload
        ~latency ~shards ()
    in
    let m = Detmt.Recorder.metrics obs in
    match format with
    | "openmetrics" -> write_out out (Detmt.Openmetrics.export m)
    | "table" ->
      if json then
        write_out out (Detmt.Json.to_string (Detmt.Metrics.to_json m))
      else
        let title =
          Printf.sprintf "Metrics: %s on %s, %d clients x %d requests"
            scheduler workload clients requests
        in
        let t = Detmt.Metrics.to_table ~title m in
        let render t =
          if csv then Detmt.Table.to_csv t
          else Format.asprintf "%a@." Detmt.Table.pp t
        in
        let body =
          render t
          ^
          if series then
            render
              (series_table ~title:"Windowed series (virtual time)"
                 (Detmt.Recorder.timeseries obs))
          else ""
        in
        (match out with None -> print_string body | Some _ -> write_out out body)
    | other ->
      Format.eprintf "unknown metrics format %S (table, openmetrics)@." other;
      exit 2
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the registry as JSON.")
  in
  let format_arg =
    Arg.(
      value
      & opt string "table"
      & info [ "f"; "format" ] ~docv:"FMT"
          ~doc:
            "Output format: table (default; honours $(b,--csv)/$(b,--json)) \
             or openmetrics (OpenMetrics text exposition).")
  in
  let series_flag =
    Arg.(
      value & flag
      & info [ "series" ]
          ~doc:
            "Also print the virtual-time-windowed series (one row per \
             track, per-window values).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run one workload with the flight recorder on and print the \
          metrics registry: scheduler grants/deferrals/queue depths, Totem \
          broadcast/retransmit/dedup counters, replica request counters.  \
          $(b,-f openmetrics) emits the OpenMetrics text exposition; \
          $(b,--series) appends the windowed virtual-time series.")
    Term.(
      const run $ scheduler_arg $ clients_arg $ requests_arg $ replicas_arg
      $ seed_arg $ workload_arg $ latency_arg $ trace_shards_arg $ csv_flag
      $ json_flag $ format_arg $ series_flag $ output_arg)

(* ----------------------------- profile ------------------------------ *)

(* Hot-path profile of one configuration: wall-clock phase timers
   (pop/dispatch/grant/flush), per-decision-module cost, and allocation
   accounting.  The baseline is the identical run with observability fully
   off; the profiled run uses [Recorder.profile_only], whose metric/span
   sites stay no-ops, so the reported overhead is the cost of the timers
   alone.  Both sides take the best of [repeats] runs to shave scheduler
   noise off the comparison. *)
let profile_cmd =
  let run scheduler clients requests replicas seed workload latency shards
      repeats check_overhead json out =
    if repeats < 1 then begin
      Format.eprintf "profile: --repeats must be >= 1@.";
      exit 2
    end;
    let timed obs =
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      ignore
        (record_run ~obs ~scheduler ~clients ~requests ~replicas ~seed
           ~workload ~latency ~shards ());
      Unix.gettimeofday () -. t0
    in
    let best f =
      List.fold_left Stdlib.min infinity (List.init repeats (fun _ -> f ()))
    in
    let wall_baseline = best (fun () -> timed Detmt.Recorder.disabled) in
    let p = Detmt.Profile.create () in
    let wall_profiled =
      best (fun () ->
          Detmt.Profile.reset p;
          timed (Detmt.Recorder.profile_only p))
    in
    let overhead_pct =
      if wall_baseline <= 0.0 then 0.0
      else (wall_profiled -. wall_baseline) /. wall_baseline *. 100.0
    in
    if json then begin
      let doc =
        Detmt.Json.Obj
          [ ("scheduler", Detmt.Json.String scheduler);
            ("workload", Detmt.Json.String workload);
            ("clients", Detmt.Json.Int clients);
            ("requests", Detmt.Json.Int requests);
            ("shards", Detmt.Json.Int shards);
            ("repeats", Detmt.Json.Int repeats);
            ("profile", Detmt.Profile.to_json p);
            ("wall_baseline_s", Detmt.Json.Float wall_baseline);
            ("wall_profiled_s", Detmt.Json.Float wall_profiled);
            ("overhead_pct", Detmt.Json.Float overhead_pct) ]
      in
      write_out out (Detmt.Json.to_string doc ^ "\n")
    end
    else begin
      let title =
        Printf.sprintf "Hot-path profile: %s on %s, %d clients x %d requests"
          scheduler workload clients requests
      in
      print_table (Detmt.Profile.to_table ~title p);
      let a = Detmt.Profile.alloc p in
      Format.printf "allocation:    %.0f minor + %.0f major words (%.0f \
                     promoted)@."
        a.Detmt.Profile.minor_words a.major_words a.promoted_words;
      Format.printf "wall baseline: %.4f s (best of %d, obs off)@."
        wall_baseline repeats;
      Format.printf "wall profiled: %.4f s (best of %d)@." wall_profiled
        repeats;
      Format.printf "overhead:      %+.2f%%@." overhead_pct
    end;
    match check_overhead with
    | Some bound when overhead_pct > bound ->
      Format.eprintf "profiler overhead %.2f%% exceeds the %.2f%% bound@."
        overhead_pct bound;
      exit 1
    | _ -> ()
  in
  let repeats_arg =
    Arg.(
      value & opt int 3
      & info [ "repeats" ] ~docv:"N"
          ~doc:"Best-of-N wall-clock runs per side (default 3).")
  in
  let check_overhead_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "check-overhead" ] ~docv:"PCT"
          ~doc:
            "Exit non-zero when the profiler's wall-clock overhead vs the \
             obs-off baseline exceeds PCT percent (the CI gate).")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the profile as JSON.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile the hot path of one run: wall-clock time per engine phase \
          (pop/dispatch/grant/flush), per-decision-module callback cost, \
          and allocation (Gc.quick_stat deltas) — plus the profiler's own \
          overhead against an observability-off baseline.")
    Term.(
      const run $ scheduler_arg $ clients_arg $ requests_arg $ replicas_arg
      $ seed_arg $ workload_arg $ latency_arg $ trace_shards_arg
      $ repeats_arg $ check_overhead_arg $ json_flag $ output_arg)

(* ------------------------------- top --------------------------------- *)

let sparkline values =
  let levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                  "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                  "\xe2\x96\x87"; "\xe2\x96\x88" |] in
  let peak = List.fold_left Stdlib.max 0.0 values in
  if peak <= 0.0 then String.concat "" (List.map (fun _ -> " ") values)
  else
    String.concat ""
      (List.map
         (fun v ->
           if v <= 0.0 then " "
           else
             let i = int_of_float (v /. peak *. 7.0) in
             levels.(Stdlib.max 0 (Stdlib.min 7 i)))
         values)

let default_top_tracks =
  [ "active.inflight"; "active.replies"; "active.response_ms";
    "engine.pending"; "totem.deliveries"; "totem.wire_batches";
    "shard.replies"; "shard.cross_inflight"; "reconfig.epoch";
    "reconfig.held_backlog" ]

(* Live terminal view of a run: the engine is driven one virtual-time
   window at a time ([Engine.run ~until] leaves the queue intact between
   frames), and each frame renders the recorder's windowed series, the
   queue depth and epoch events.  Stepping the engine in slices executes
   exactly the same events at the same virtual times as one uninterrupted
   run, so the displayed run is the run every other command reproduces. *)
let top_cmd =
  let run scheduler clients requests replicas seed workload latency shards
      frame_ms delay frames no_ansi tracks =
    if frame_ms <= 0.0 then begin
      Format.eprintf "top: --frame-ms must be positive@.";
      exit 2
    end;
    let cls, gen = resolve_workload workload in
    let params =
      { Detmt.Active.default_params with
        scheduler; replicas; net_latency_ms = latency }
    in
    let engine = Detmt.Engine.create () in
    let obs = Detmt.Recorder.create ~width_ms:frame_ms () in
    let submit, replies =
      if shards <= 1 then begin
        let sys = Detmt.Active.create ~obs ~engine ~cls ~params () in
        ( (fun ~client ~client_req ~meth ~args ~on_reply ->
            Detmt.Active.submit sys ~client ~client_req ~meth ~args ~on_reply),
          fun () -> Detmt.Active.replies_received sys )
      end
      else begin
        let sys =
          Detmt.Shard.create ~obs ~engine ~cls
            ~params:{ Detmt.Shard.shards; base = params } ()
        in
        ( (fun ~client ~client_req ~meth ~args ~on_reply ->
            Detmt.Shard.submit sys ~client ~client_req ~meth ~args ~on_reply),
          fun () -> Detmt.Shard.replies_received sys )
      end
    in
    let master = Detmt.Rng.create (Int64.of_int seed) in
    let all =
      List.init clients (fun id ->
          Detmt.Client.create_on ~engine ~submit ~id
            ~rng:(Detmt.Rng.split master) ~gen ~max_requests:requests ())
    in
    List.iter Detmt.Client.start all;
    let expected = clients * requests in
    let ts = Detmt.Recorder.timeseries obs in
    let frame = ref 0 in
    let render () =
      if not no_ansi then print_string "\027[2J\027[H";
      Printf.printf "detmt top — %s on %s  vt=%.1f ms  frame %d\n" scheduler
        workload (Detmt.Engine.now engine) !frame;
      Printf.printf
        "events=%d  queue=%d  replies=%d/%d\n\n"
        (Detmt.Engine.events_executed engine)
        (Detmt.Engine.pending engine) (replies ()) expected;
      let names = Detmt.Timeseries.names ts in
      let shown =
        match tracks with
        | [] -> List.filter (fun n -> List.mem n names) default_top_tracks
        | picks -> List.filter (fun n -> List.mem n names) picks
      in
      List.iter
        (fun name ->
          match Detmt.Timeseries.kind ts name with
          | None -> ()
          | Some kind ->
            let wins = Detmt.Timeseries.windows ts name in
            let values =
              List.map (Detmt.Timeseries.window_value kind) wins
            in
            let tail =
              let n = List.length values in
              if n > 48 then List.filteri (fun i _ -> i >= n - 48) values
              else values
            in
            Printf.printf "%-24s %8g |%s|\n" name
              (Detmt.Timeseries.peak ts name)
              (sparkline tail))
        shown;
      flush stdout
    in
    let rec loop until =
      if
        Detmt.Engine.pending engine > 0 && (frames = 0 || !frame < frames)
      then begin
        Detmt.Engine.run ~until engine;
        incr frame;
        render ();
        if delay > 0.0 then Unix.sleepf delay;
        loop (until +. frame_ms)
      end
    in
    loop frame_ms;
    Printf.printf
      "\nrun %s: %d/%d replies in %.1f virtual ms (%d events, %d frames)\n"
      (if replies () = expected then "complete" else "stopped")
      (replies ()) expected
      (Detmt.Engine.now engine)
      (Detmt.Engine.events_executed engine)
      !frame
  in
  let frame_ms_arg =
    Arg.(
      value & opt float 20.0
      & info [ "frame-ms" ] ~docv:"MS"
          ~doc:
            "Virtual milliseconds per frame (also the series window \
             width; default 20).")
  in
  let delay_arg =
    Arg.(
      value & opt float 0.0
      & info [ "delay" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock pause between frames for a live feel (default 0: \
             render as fast as the run executes).")
  in
  let frames_arg =
    Arg.(
      value & opt int 0
      & info [ "frames" ] ~docv:"N"
          ~doc:"Stop after N frames (0 = run to completion).")
  in
  let no_ansi_flag =
    Arg.(
      value & flag
      & info [ "no-ansi" ]
          ~doc:
            "Print frames sequentially instead of redrawing the screen \
             (for logs and CI).")
  in
  let track_arg =
    Arg.(
      value & opt_all string []
      & info [ "track" ] ~docv:"NAME"
          ~doc:"Series track to display (repeatable; default: a curated \
                set of the tracks present).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live-refreshing terminal view of a run: windowed virtual-time \
          series, event-queue depth, reply progress and epoch events, one \
          frame per virtual-time window.  The sliced run executes exactly \
          the events of an uninterrupted one, so what you watch is the run \
          every other command reproduces.")
    Term.(
      const run $ scheduler_arg $ clients_arg $ requests_arg $ replicas_arg
      $ seed_arg $ workload_arg $ latency_arg $ trace_shards_arg
      $ frame_ms_arg $ delay_arg $ frames_arg $ no_ansi_flag $ track_arg)

(* --------------------------- fingerprint ---------------------------- *)

(* Determinism oracle: run a fixed matrix of workloads x schedulers and
   print one line per combination with the per-replica trace and state
   fingerprints.  Two builds of the scheduler core are behaviourally
   identical exactly when this output is bit-identical — the refactoring
   contract of the two-module scheduler architecture. *)

let replica_fp r =
  Printf.sprintf "%d:%Lx/%Lx" (Detmt.Replica.id r)
    (Detmt.Trace.fingerprint (Detmt.Replica.trace r))
    (Detmt.Replica.state_fingerprint r)

let fingerprint_cmd =
  let run seed workers clients requests shards with_obs schedulers workloads
      =
    let schedulers =
      if schedulers <> [] then schedulers
      else Detmt.Registry.deterministic_decisions
    in
    let workloads =
      if workloads <> [] then workloads else [ "figure1"; "prodcons" ]
    in
    List.iter
      (fun workload ->
        let cls, gen = resolve_workload workload in
        List.iter
          (fun scheduler ->
            (* seq deadlocks on prodcons (section 1); the stalled run still
               has a deterministic prefix, which is what we fingerprint. *)
            let engine = Detmt.Engine.create () in
            (* --obs turns the full telemetry stack on (metrics, windowed
               series, spans, profiler); the output must stay bit-identical
               — the read-only contract, diffable from CI. *)
            let obs =
              if with_obs then
                Detmt.Recorder.create ~profile:(Detmt.Profile.create ()) ()
              else Detmt.Recorder.disabled
            in
            let params =
              { Detmt.Active.default_params with scheduler; workers }
            in
            let replies, fps =
              if shards = 0 then begin
                (* legacy unsharded path — [--shards 1] must print the same
                   lines through {!Detmt.Shard} *)
                let system =
                  Detmt.Active.create ~obs ~engine ~cls ~params ()
                in
                Detmt.Client.run_clients ~engine ~system ~clients
                  ~requests_per_client:requests ~gen
                  ~seed:(Int64.of_int seed) ();
                ( Detmt.Active.replies_received system,
                  List.map replica_fp (Detmt.Active.live_replicas system) )
              end
              else begin
                let system =
                  Detmt.Shard.create ~obs ~engine ~cls
                    ~params:{ Detmt.Shard.shards; base = params } ()
                in
                Detmt.Shard.run_clients system ~clients
                  ~requests_per_client:requests ~gen
                  ~seed:(Int64.of_int seed) ();
                ( Detmt.Shard.replies_received system,
                  List.concat_map
                    (fun g -> List.map replica_fp (Detmt.Active.live_replicas g))
                    (Array.to_list (Detmt.Shard.groups system)) )
              end
            in
            Format.printf "%-13s %-9s replies=%-3d %s@." workload scheduler
              replies (String.concat " " fps))
          schedulers)
      workloads
  in
  let schedulers_arg =
    Cli_args.schedulers_all
      ~doc:
        "Scheduler to fingerprint (repeatable; default: all deterministic \
         ones)."
  in
  let workloads_arg =
    Cli_args.workloads_all
      ~doc:
        "Workload to fingerprint (repeatable; default: figure1 and \
         prodcons)."
  in
  let shards_arg =
    Cli_args.shards ~default:0
      ~doc:
        "Fingerprint the sharded system with this many groups.  0 (the \
         default) is the legacy unsharded path; 1 prints bit-identical \
         output through the sharded one — the refactoring contract."
  in
  let obs_flag =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Run with the full telemetry stack enabled (metrics, windowed \
             series, spans, hot-path profiler).  The output must be \
             bit-identical to a run without it — the recorder's read-only \
             contract.")
  in
  Cmd.v
    (Cmd.info "fingerprint"
       ~doc:
         "Print the determinism oracle: per-replica trace and state \
          fingerprints for a fixed matrix of workloads and schedulers.  \
          Bit-identical output across two builds proves the scheduler \
          refactoring preserved every grant decision.")
    Term.(
      const run $ seed_arg $ workers_arg $ clients_arg $ requests_arg
      $ shards_arg $ obs_flag $ schedulers_arg $ workloads_arg)

(* ------------------------------ explore ------------------------------ *)

(* Bounded schedule-space model checking.  Two modes:
   - enumeration: split --budget across a scheduler x workload matrix and
     search the delivery-interleaving envelope for divergences; any found
     counterexample is ddmin-shrunk and (with -o) written as a replayable
     witness.  Exit 1 when a divergence survives.
   - --replay FILE: re-execute one checked-in schedule and report its
     verdict; --expect makes the exit code assert it (the CI hooks). *)

let explore_cmd =
  let run replay expect do_shrink budget max_depth max_width skews seed
      clients requests workers elastic schedulers workloads output =
    match replay with
    | Some path ->
      let sched = Detmt.Schedule.load path in
      let verdict, canonical, outcome = Detmt.Explore.replay sched in
      Format.printf "schedule:   %s (%d entries)@." path
        (Detmt.Schedule.size sched);
      Format.printf "scheduler:  %s  workload: %s  seed: %d@."
        sched.Detmt.Schedule.scheduler sched.Detmt.Schedule.workload
        sched.Detmt.Schedule.seed;
      Format.printf "canonical:  replies=%d/%d outstanding=%d order=%Lx@."
        canonical.Detmt.Explore.o_replies canonical.Detmt.Explore.o_expected
        canonical.Detmt.Explore.o_outstanding
        canonical.Detmt.Explore.o_order_fp;
      Format.printf "perturbed:  replies=%d/%d outstanding=%d order=%Lx@."
        outcome.Detmt.Explore.o_replies outcome.Detmt.Explore.o_expected
        outcome.Detmt.Explore.o_outstanding outcome.Detmt.Explore.o_order_fp;
      (match outcome.Detmt.Explore.o_divergence with
      | Some d ->
        Format.printf "divergence: %a@." Detmt.Consistency.pp_divergence d
      | None -> ());
      Format.printf "verdict:    %s@."
        (Detmt.Explore.verdict_to_string verdict);
      let divergent =
        match verdict with Detmt.Explore.Divergent _ -> true | _ -> false
      in
      (match expect with
      | Some "divergent" when not divergent ->
        Format.printf "FAIL: expected a divergence, got none@.";
        exit 1
      | Some "clean" when divergent ->
        Format.printf "FAIL: expected a clean replay, got a divergence@.";
        exit 1
      | Some "divergent" | Some "clean" | None -> ()
      | Some other ->
        Format.printf "unknown --expect value %S (divergent|clean)@." other;
        exit 2)
    | None ->
      let schedulers =
        if schedulers <> [] then schedulers
        else Detmt.Registry.deterministic_decisions
      in
      let workloads =
        if workloads <> [] then workloads
        else if elastic then [ "hotspot" ]
        else [ "figure1"; "prodcons" ]
      in
      let combos =
        List.concat_map
          (fun w -> List.map (fun s -> (s, w)) schedulers)
          workloads
      in
      let per_combo = max 2 (budget / max 1 (List.length combos)) in
      let skews = if skews = [] then Detmt.Explore.default_skews else skews in
      let found = ref [] in
      List.iter
        (fun (scheduler, workload) ->
          let base =
            Detmt.Schedule.make ~seed ~clients ~requests ~workers ~elastic
              ~scheduler ~workload []
          in
          let result =
            Detmt.Explore.explore ~skews ?max_depth ?max_width
              ~budget:per_combo base
          in
          let st = result.Detmt.Explore.stats in
          Format.printf
            "%-13s %-9s explored=%-4d pruned=%-4d order-shifted=%-4d \
             depth<=%d %s@."
            workload scheduler st.Detmt.Explore.explored
            st.Detmt.Explore.pruned st.Detmt.Explore.order_shifted
            st.Detmt.Explore.max_frontier_depth
            (match result.Detmt.Explore.divergent with
            | [] -> "ok"
            | (_, reason) :: _ -> "DIVERGENT: " ^ reason);
          found := !found @ result.Detmt.Explore.divergent)
        combos;
      (match !found with
      | [] ->
        Format.printf
          "certified: no divergence in the explored envelope \
           (%d schedules/combination)@."
          per_combo
      | (sched, reason) :: _ ->
        Format.printf "@.divergence (%s), %d entries before shrinking@."
          reason (Detmt.Schedule.size sched);
        let final =
          if do_shrink then begin
            let minimal, probes, reproduced = Detmt.Explore.shrink sched in
            if reproduced then
              Format.printf "shrunk to %d entries in %d probes@."
                (Detmt.Schedule.size minimal) probes
            else Format.printf "shrink probe did not reproduce; keeping@.";
            minimal
          end
          else sched
        in
        (match output with
        | Some path ->
          Detmt.Schedule.save final path;
          Format.printf "witness written to %s@." path
        | None -> print_string (Detmt.Schedule.to_string final));
        exit 1)
  in
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay a schedule file instead of exploring.")
  in
  let expect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect" ] ~docv:"VERDICT"
          ~doc:
            "With $(b,--replay): exit non-zero unless the verdict matches \
             ($(b,divergent) or $(b,clean); order-shifted counts as clean).")
  in
  let shrink_arg =
    Arg.(
      value & opt bool true
      & info [ "shrink" ] ~docv:"BOOL"
          ~doc:"Delta-debug a found divergence to a minimal witness.")
  in
  let budget_arg =
    Arg.(
      value & opt int 2000
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Total number of schedules to run, split evenly across the \
             scheduler x workload matrix.")
  in
  let depth_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-depth" ] ~docv:"N"
          ~doc:"Maximum perturbation entries per schedule (default 2).")
  in
  let width_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-width" ] ~docv:"N"
          ~doc:"Maximum children pushed per search node (default 32).")
  in
  let skew_arg =
    Arg.(
      value & opt_all float []
      & info [ "skew" ] ~docv:"MS"
          ~doc:
            "Delivery-delay magnitude to try (repeatable; default the \
             jitter-scale envelope).  Large values reach failure-detection \
             and recovery races the default envelope deliberately avoids.")
  in
  let explore_clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Closed-loop clients per run.")
  in
  let explore_requests_arg =
    Arg.(
      value & opt int 5
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let elastic_flag =
    Arg.(
      value & flag
      & info [ "elastic" ]
          ~doc:
            "Explore the elastic substrate: every schedule runs through a \
             live split/merge cycle (split at 6ms, merge at 20ms), the \
             oracles additionally check that each epoch transition applies \
             and agrees bit-identically across every incarnation, and \
             crash/recovery candidates land inside the reconfiguration \
             window.  Default workload: hotspot.")
  in
  let schedulers_arg =
    Cli_args.schedulers_all
      ~doc:
        "Scheduler to explore (repeatable; default: all deterministic ones)."
  in
  let workloads_arg =
    Cli_args.workloads_all
      ~doc:"Workload to explore (repeatable; default: figure1 and prodcons)."
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Bounded model checking over admissible delivery interleavings: \
          enumerate latency skews, same-instant orderings and batch-flush \
          timings, check every schedule for replica divergence, and shrink \
          any counterexample to a minimal replayable witness.")
    Term.(
      const run $ replay_arg $ expect_arg $ shrink_arg $ budget_arg
      $ depth_arg $ width_arg $ skew_arg $ seed_arg $ explore_clients_arg
      $ explore_requests_arg $ workers_arg $ elastic_flag $ schedulers_arg
      $ workloads_arg $ output_arg)

(* ------------------------------ chaos ------------------------------- *)

let chaos_cmd =
  let all_scenarios = List.map (fun s -> s.Detmt.Chaos.name) Detmt.Chaos.scenarios in
  let scenario_arg =
    let doc =
      "Scenario to run (repeatable): " ^ String.concat ", " all_scenarios
      ^ ".  Default: all."
    in
    Arg.(value & opt_all string [] & info [ "scenario" ] ~docv:"NAME" ~doc)
  in
  let chaos_scheduler_arg =
    Cli_args.schedulers_all
      ~doc:
        ("Scheduler to sweep (repeatable).  Default: "
        ^ String.concat ", " Detmt.Chaos.default_schedulers ^ ".")
  in
  let chaos_shards_arg =
    Cli_args.shards ~default:1
      ~doc:
        "Run the sweep over the sharded system with this many groups; every \
         invariant (exactly-once, divergence, recovery) is checked per \
         group and aggregated."
  in
  let quick_flag =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"Smaller load (2 clients x 3 requests) for CI smoke runs.")
  in
  let forensics_flag =
    Arg.(value & flag
         & info [ "forensics" ]
             ~doc:
               "On a divergence, replay the failing combination with the \
                flight recorder on (determinism makes the replay \
                bit-identical) and dump the scheduler decision audit window \
                around the first divergent checkpoint.")
  in
  let forensics ~seed ~clients ~requests_per_client ~cls ~gen
      (o : Detmt.Chaos.outcome) (d : Detmt.Consistency.divergence) =
    match Detmt.Chaos.find_scenario o.Detmt.Chaos.o_scenario with
    | None -> ()
    | Some scenario ->
      let obs = Detmt.Recorder.create () in
      ignore
        (Detmt.Chaos.run ~seed ~shards:o.Detmt.Chaos.o_shards ~clients
           ~requests_per_client ~obs ~scenario
           ~scheduler:o.Detmt.Chaos.o_scheduler ~cls ~gen ());
      Format.printf
        "@.forensics: %s/%s first divergence at checkpoint seq %d \
         (replica %d hash %Lx vs replica %d hash %Lx)@."
        o.Detmt.Chaos.o_scenario o.Detmt.Chaos.o_scheduler d.seq d.replica_a
        d.hash_a d.replica_b d.hash_b;
      List.iter
        (fun (f, a, b) ->
          Format.printf "  field %-12s %d vs %d@." f a b)
        d.differing_fields;
      (match
         Detmt.Recorder.checkpoint_time obs ~replica:d.replica_a ~seq:d.seq
       with
      | None ->
        Format.printf
          "  (no checkpoint time recorded for replica %d seq %d)@."
          d.replica_a d.seq
      | Some at ->
        let margin = 5.0 in
        let window = Detmt.Recorder.audit_window obs ~around:at ~margin in
        Format.printf
          "  audit window %.2f ms around t=%.2f ms (%d of %d decisions):@."
          margin at (List.length window)
          (Detmt.Recorder.audit_count obs);
        List.iter
          (fun e -> Format.printf "  %a@." Detmt.Audit.pp_entry e)
          window)
  in
  let run csv seed shards workers scenario_names scheduler_names quick
      with_forensics workload =
    let cls, gen = resolve_workload workload in
    let scenario_names =
      if scenario_names = [] then all_scenarios else scenario_names
    in
    let schedulers =
      if scheduler_names = [] then Detmt.Chaos.default_schedulers
      else scheduler_names
    in
    let clients, requests_per_client = if quick then (2, 3) else (4, 5) in
    let seed = Int64.of_int seed in
    let outcomes =
      Detmt.Chaos.sweep ~seed ~shards ~workers ~schedulers ~scenario_names
        ~clients ~requests_per_client ~cls ~gen ()
    in
    emit csv (Detmt.Chaos.table outcomes);
    if with_forensics then
      List.iter
        (fun o ->
          Option.iter
            (forensics ~seed ~clients ~requests_per_client ~cls ~gen o)
            o.Detmt.Chaos.o_divergence)
        outcomes;
    let failed = List.filter (fun o -> not (Detmt.Chaos.ok o)) outcomes in
    if failed <> [] then begin
      Format.eprintf "%d of %d combinations violated an invariant@."
        (List.length failed) (List.length outcomes);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Sweep fault scenarios (lossy links, duplicates, partitions, \
          crash+recovery) across the deterministic schedulers and check the \
          robustness invariants; exits 1 on any violation.")
    Term.(
      const run $ csv_flag $ seed_arg $ chaos_shards_arg $ workers_arg
      $ scenario_arg $ chaos_scheduler_arg $ quick_flag $ forensics_flag
      $ workload_arg)

(* ------------------------------ shard ------------------------------- *)

let cross_arg =
  Arg.(
    value & opt float 0.1
    & info [ "cross" ] ~docv:"RATIO"
        ~doc:
          "Fraction of requests whose lock closure spans two objects (the \
           cross-shard two-phase path when they land on different shards).")

let batch_arg =
  Arg.(
    value & opt int 1
    & info [ "batch" ] ~docv:"K"
        ~doc:
          "Coalesce up to K ordered requests per wire batch inside each \
           group (1 = batching off).")

let batch_delay_arg =
  Arg.(
    value & opt float 0.2
    & info [ "batch-delay" ] ~docv:"MS"
        ~doc:"Flush an under-filled batch after this many virtual ms.")

let shard_cmd =
  let run shards clients requests seed scheduler workers cross batch
      batch_delay =
    let workload =
      { Detmt.Sharded.default with Detmt.Sharded.cross_ratio = cross }
    in
    let batching =
      if batch > 1 then
        Some { Detmt.Totem.max_batch = batch; delay_ms = batch_delay }
      else None
    in
    let row =
      Detmt.Experiment.run_shard ~seed:(Int64.of_int seed) ~scheduler
        ~workers ~requests_per_client:requests ?batching ~workload ~shards
        ~clients ()
    in
    let open Detmt.Experiment in
    Format.printf "shards:       %d (%s in every group)@." shards scheduler;
    Format.printf "clients:      %d x %d requests, %.0f%% transfers@." clients
      requests (100.0 *. cross);
    Format.printf "replies:      %d/%d@." row.s_replies row.s_expected;
    Format.printf "routing:      %d fast-path, %d cross-shard@."
      row.s_fast_path row.s_cross_shard;
    Format.printf "mean:         %.2f ms@." row.s_mean_response_ms;
    Format.printf "p95:          %.2f ms@." row.s_p95_response_ms;
    Format.printf "throughput:   %.1f req/s@." row.s_throughput_per_s;
    Format.printf "makespan:     %.1f virtual ms@." row.s_duration_ms;
    Format.printf "broadcasts:   %d (%d wire batches)@." row.s_broadcasts
      row.s_wire_batches;
    Format.printf "consistent:   %b@." row.s_consistent;
    Format.printf "fingerprint:  %Lx@." row.s_fingerprint
  in
  let shards_arg =
    Cli_args.shards ~default:2
      ~doc:"Number of independent replica groups the object space is split \
            across."
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Run the sharded workload once across N replica groups and report \
          routing, latency, throughput and the determinism fingerprint.")
    Term.(
      const run $ shards_arg $ clients_arg $ requests_arg $ seed_arg
      $ scheduler_arg $ workers_arg $ cross_arg $ batch_arg
      $ batch_delay_arg)

(* ------------------------------ reshard ------------------------------ *)

(* One elastic run, end to end: split / (optional hot-swap) / merge at
   fixed virtual times — or the autoscaling controller — over the hotspot
   workload, then print the transition log and check every elastic
   invariant.  Exit 1 on any violation: the CI smoke hook. *)

let reshard_cmd =
  let run clients requests seed scheduler autoscale swap_to =
    let workload = Detmt.Experiment.elastic_bench_workload in
    let cls = Detmt.Hotspot.cls workload in
    let gen = Detmt.Hotspot.gen workload in
    let engine = Detmt.Engine.create () in
    let system =
      Detmt.Reconfig.create ~engine ~cls
        ~params:
          { Detmt.Reconfig.default_params with
            Detmt.Reconfig.base =
              { Detmt.Active.default_params with scheduler } }
        ()
    in
    if autoscale then
      Detmt.Reconfig.set_autoscale system Detmt.Experiment.elastic_bench_policy
    else begin
      Detmt.Reconfig.request_at system ~at:6.0 (Detmt.Reconfig.Split 0);
      (match swap_to with
      | Some s ->
        Detmt.Reconfig.request_at system ~at:12.0
          (Detmt.Reconfig.Hot_swap { group = 0; scheduler = s })
      | None -> ());
      Detmt.Reconfig.request_at system ~at:20.0
        (Detmt.Reconfig.Merge { from_g = 1; into = 0 })
    end;
    ignore
      (Detmt.Reconfig.run_clients_stats system ~clients
         ~requests_per_client:requests ~gen ~seed:(Int64.of_int seed) ());
    let expected = clients * requests in
    let replies = Detmt.Reconfig.replies_received system in
    Format.printf "mode:         %s (%s)@."
      (if autoscale then "autoscale" else "split/merge cycle")
      scheduler;
    Format.printf "clients:      %d x %d requests@." clients requests;
    Format.printf "replies:      %d/%d (%d held behind barriers)@." replies
      expected
      (Detmt.Reconfig.held_requests system);
    List.iter
      (fun tr ->
        Format.printf
          "transition:   epoch %d at %.1fms (barrier seq %d) %s -> %d \
           groups@."
          tr.Detmt.Reconfig.tr_epoch tr.Detmt.Reconfig.tr_at_ms
          tr.Detmt.Reconfig.tr_barrier_seq
          (Detmt.Reconfig.command_to_string tr.Detmt.Reconfig.tr_command)
          tr.Detmt.Reconfig.tr_groups)
      (Detmt.Reconfig.transitions system);
    let states = Detmt.Reconfig.states_agree system in
    let epochs = Detmt.Reconfig.epochs_agree system in
    let dups = Detmt.Reconfig.duplicate_client_replies system in
    Format.printf "epoch:        %d (%d live groups)@."
      (Detmt.Reconfig.epoch system)
      (Detmt.Reconfig.group_count system);
    Format.printf "states agree: %b   epochs agree: %b   duplicates: %d@."
      states epochs dups;
    Format.printf "fingerprint:  %Lx@." (Detmt.Reconfig.fingerprint system);
    let expected_transitions = if autoscale then 1 else 2 in
    if
      replies <> expected || dups <> 0 || (not states) || (not epochs)
      || Detmt.Reconfig.epoch system < expected_transitions
    then begin
      Format.printf "FAIL: an elastic invariant was violated@.";
      exit 1
    end
  in
  let reshard_clients_arg =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"N" ~doc:"Closed-loop clients.")
  in
  let reshard_requests_arg =
    Arg.(
      value & opt int 6
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let autoscale_flag =
    Arg.(
      value & flag
      & info [ "autoscale" ]
          ~doc:
            "Hand control to the deterministic autoscaling controller \
             instead of the fixed split/merge cycle.")
  in
  let swap_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "swap-to" ] ~docv:"SCHEDULER"
          ~doc:
            "Also hot-swap group 0 to this scheduler at 12ms, between the \
             split and the merge (cycle mode only).")
  in
  Cmd.v
    (Cmd.info "reshard"
       ~doc:
         "Run one live reconfiguration cycle — split, optional scheduler \
          hot-swap, merge (or $(b,--autoscale)) — over the hotspot \
          workload, print the transition log, and verify every elastic \
          invariant: exactly-once replies, state and epoch agreement \
          across all incarnations.  Non-zero exit on any violation.")
    Term.(
      const run $ reshard_clients_arg $ reshard_requests_arg $ seed_arg
      $ scheduler_arg $ autoscale_flag $ swap_arg)

(* ------------------------------ bench ------------------------------- *)

let bench_cmd =
  let run name shards clients seed scheduler workers json csv out =
    match name with
    | "shard" ->
      let shards_list =
        List.sort_uniq compare
          (max 1 shards :: List.filter (fun s -> s < shards) [ 1; 2; 4; 8 ])
      in
      let rows =
        Detmt.Experiment.shard_sweep ~seed:(Int64.of_int seed) ~shards_list
          ?clients_list:(Option.map (fun c -> [ c ]) clients)
          ~scheduler ~workers ()
      in
      emit csv (Detmt.Experiment.shard_table rows);
      if json then begin
        let path = Option.value out ~default:"BENCH_shard.json" in
        write_out (Some path)
          (Detmt.Json.to_string (Detmt.Experiment.shard_json rows) ^ "\n")
      end
    | "elastic" ->
      let rows =
        Detmt.Experiment.elastic_sweep ~seed:(Int64.of_int seed)
          ?clients_list:(Option.map (fun c -> [ c ]) clients)
          ~scheduler ()
      in
      emit csv (Detmt.Experiment.elastic_table rows);
      if json then begin
        let path = Option.value out ~default:"BENCH_elastic.json" in
        write_out (Some path)
          (Detmt.Json.to_string (Detmt.Experiment.elastic_json rows) ^ "\n")
      end
    | other ->
      Format.eprintf
        "unknown bench experiment %S (available: shard, elastic)@." other;
      exit 2
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "Benchmark experiment to run: shard (the scaling grid) or \
             elastic (autoscaling vs static shard counts).")
  in
  let shards_arg =
    Cli_args.shards ~default:8
      ~doc:
        "Highest shard count to sweep; the grid runs the powers of two up \
         to N (plus N itself)."
  in
  let bench_clients_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "clients" ] ~docv:"N"
          ~doc:
            "Restrict the sweep to one client count (default: 64, 256 and \
             1024).")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Also write the rows to BENCH_<experiment>.json (or the \
             $(b,-o) path).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run a benchmark experiment grid and print its table; with \
          $(b,--json), write the machine-readable rows next to it.")
    Term.(
      const run $ name_arg $ shards_arg $ bench_clients_arg $ seed_arg
      $ scheduler_arg $ workers_arg $ json_flag $ csv_flag $ output_arg)

let default =
  Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  let info =
    Cmd.info "detmt-cli" ~version:"1.0.0"
      ~doc:
        "Deterministic multithreading strategies for replicated objects — \
         experiment driver."
  in
  let cmds =
    [ run_cmd; fig1_cmd;
      table_cmd "fig1b" "Figure 1 ablation: compute-heavy variant."
        Detmt.Experiment.figure1b;
      table_cmd "fig2" "Figure 2: last-lock hand-off." (fun () ->
          Detmt.Experiment.figure2 ());
      table_cmd "fig3" "Figure 3: non-conflicting mutexes." (fun () ->
          Detmt.Experiment.figure3 ());
      fig4_cmd;
      table_cmd "wan" "LSA vs MAT under growing network latency." (fun () ->
          Detmt.Experiment.wan ());
      table_cmd "failover" "Leader-failure take-over time." (fun () ->
          Detmt.Experiment.failover ());
      table_cmd "pds" "PDS batch-size and dummy-message sweep." (fun () ->
          Detmt.Experiment.pds_batch ());
      table_cmd "overhead" "Bookkeeping-overhead crossover (section 5)."
        (fun () -> Detmt.Experiment.overhead ());
      table_cmd "prodcons" "Producer/consumer over condition variables."
        (fun () -> Detmt.Experiment.prodcons ());
      table_cmd "determinism" "Replica-consistency matrix." (fun () ->
          Detmt.Experiment.determinism ());
      table_cmd "model" "Analytic model vs simulator (section 5)." (fun () ->
          Detmt.Experiment.model ());
      Cmd.v
        (Cmd.info "interference"
           ~doc:"Static interference analysis (section 5).")
        Term.(
          const (fun () ->
              Detmt.Interference.pp_report Format.std_formatter
                (Detmt.Experiment.interference ()))
          $ const ());
      table_cmd "saturation" "Open-loop load sweep (saturation points)."
        (fun () -> Detmt.Experiment.saturation ());
      trace_cmd; metrics_cmd; profile_cmd; top_cmd; chaos_cmd;
      fingerprint_cmd; explore_cmd;
      shard_cmd; reshard_cmd;
      bench_cmd; timeline_cmd; analyse_cmd;
      schedulers_cmd; sched_cmd; transform_cmd ]
  in
  exit (Cmd.eval (Cmd.group ~default info cmds))
