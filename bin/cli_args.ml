(* Shared command-line vocabulary for every detmt-cli subcommand.

   One spelling per concept — [--scheduler], [--workload], [--seed],
   [--shards], [-o]/[--output] — so flags read the same on [run], [bench],
   [chaos], [trace], [fingerprint] and [shard].  The historical one-letter
   spellings ([-s], [-w], [-c], [-n], [-r]) keep working as deprecated
   aliases: they are merged behind the primary flag, listed in their own
   man-page section, and warn when used. *)

open Cmdliner

let deprecated_section = "DEPRECATED ALIASES"

(* A primary long flag plus a deprecated legacy alias, merged into one
   value.  An explicit alias wins only when the primary flag is absent. *)
let with_alias c ~default ~name ~alias ~docv ~doc =
  let primary =
    Arg.(value & opt (some c) None & info [ name ] ~docv ~doc)
  in
  let legacy =
    Arg.(
      value
      & opt (some c) None
      & info [ alias ]
          ~deprecated:(Printf.sprintf "use --%s instead" name)
          ~docs:deprecated_section ~docv
          ~doc:(Printf.sprintf "Deprecated alias of $(b,--%s)." name))
  in
  Term.(
    const (fun p l ->
        match (p, l) with Some v, _ | None, Some v -> v | None, None -> default)
    $ primary $ legacy)

(* The repeatable variant (fingerprint and chaos take several schedulers or
   workloads); primary and alias occurrences concatenate. *)
let with_alias_all c ~name ~alias ~docv ~doc =
  let primary = Arg.(value & opt_all c [] & info [ name ] ~docv ~doc) in
  let legacy =
    Arg.(
      value
      & opt_all c []
      & info [ alias ]
          ~deprecated:(Printf.sprintf "use --%s instead" name)
          ~docs:deprecated_section ~docv
          ~doc:(Printf.sprintf "Deprecated alias of $(b,--%s)." name))
  in
  Term.(const (fun p l -> p @ l) $ primary $ legacy)

let scheduler_names =
  List.map (fun s -> s.Detmt.Registry.name) Detmt.Registry.all

let scheduler =
  with_alias Arg.string ~default:"mat" ~name:"scheduler" ~alias:"s"
    ~docv:"NAME"
    ~doc:("Scheduler to use: " ^ String.concat ", " scheduler_names ^ ".")

let schedulers_all ~doc = with_alias_all Arg.string ~name:"scheduler" ~alias:"s" ~docv:"NAME" ~doc

let workload_doc =
  "Workload: figure1 (the paper's benchmark), compute-heavy, disjoint, \
   tail, prodcons, sharded (partitionable object space)."

let workload =
  with_alias Arg.string ~default:"figure1" ~name:"workload" ~alias:"w"
    ~docv:"NAME" ~doc:workload_doc

let workloads_all ~doc =
  with_alias_all Arg.string ~name:"workload" ~alias:"w" ~docv:"NAME" ~doc

let clients =
  with_alias Arg.int ~default:8 ~name:"clients" ~alias:"c" ~docv:"N"
    ~doc:"Number of closed-loop clients."

let requests =
  with_alias Arg.int ~default:10 ~name:"requests" ~alias:"n" ~docv:"N"
    ~doc:"Requests per client."

let replicas =
  with_alias Arg.int ~default:3 ~name:"replicas" ~alias:"r" ~docv:"N"
    ~doc:"Replica-group size (per shard)."

let seed =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Master random seed for the client decision streams.")

let workers =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Simulated worker-pool width for the parallel scheduler family \
           (cgs, pcgs, wss, cgs+ws, adaptive); serial schedulers require \
           the default 1.")

let shards ~default ~doc = Arg.(value & opt int default & info [ "shards" ] ~docv:"N" ~doc)

let latency =
  Arg.(
    value & opt float 0.5
    & info [ "latency" ] ~docv:"MS"
        ~doc:"One-way network latency between replicas, in virtual ms.")

let output =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"PATH"
        ~doc:"Write the export to a file instead of stdout.")

let csv =
  Arg.(
    value & flag
    & info [ "csv" ] ~doc:"Emit the table as CSV instead of aligned text.")

let file =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"PATH"
        ~doc:
          "Load the replicated class from a DML source file instead of a \
           built-in workload (see examples/counter.dml).")
